// DNF rewriter tests, including a property check: the DNF form is
// logically equivalent to the original expression over random assignments.

#include <gtest/gtest.h>

#include <map>

#include "sql/dnf.h"
#include "sql/parser.h"
#include "util/random.h"

namespace autoindex {
namespace {

ExprPtr WhereOf(const std::string& sql) {
  auto stmt = ParseSql("SELECT a FROM t WHERE " + sql);
  EXPECT_TRUE(stmt.ok()) << sql;
  return std::move(stmt->select->where);
}

class MapResolver : public ColumnResolver {
 public:
  explicit MapResolver(std::map<std::string, Value> vals)
      : vals_(std::move(vals)) {}
  bool Resolve(const ColumnRef& col, Value* out) const override {
    auto it = vals_.find(col.column);
    if (it == vals_.end()) return false;
    *out = it->second;
    return true;
  }

 private:
  std::map<std::string, Value> vals_;
};

// Evaluates a DNF (list of conjunctions) under a resolver.
bool EvalDnf(const std::vector<DnfConjunction>& dnf,
             const ColumnResolver& r) {
  for (const DnfConjunction& conj : dnf) {
    bool all = true;
    for (const ExprPtr& atom : conj) {
      if (!EvaluatePredicate(*atom, r)) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

TEST(Dnf, AtomIsSingleton) {
  auto dnf = ToDnf(*WhereOf("a = 1"));
  ASSERT_EQ(dnf.size(), 1u);
  EXPECT_EQ(dnf[0].size(), 1u);
}

TEST(Dnf, ConjunctionStaysOne) {
  auto dnf = ToDnf(*WhereOf("a = 1 AND b = 2 AND c = 3"));
  ASSERT_EQ(dnf.size(), 1u);
  EXPECT_EQ(dnf[0].size(), 3u);
}

TEST(Dnf, DisjunctionSplits) {
  auto dnf = ToDnf(*WhereOf("a = 1 OR b = 2"));
  ASSERT_EQ(dnf.size(), 2u);
  EXPECT_EQ(dnf[0].size(), 1u);
}

TEST(Dnf, PaperExampleFactorization) {
  // "(a AND b) OR (a AND c)" -> two conjunctions {a,b}, {a,c} (Example 6).
  auto dnf = ToDnf(*WhereOf("(a = 1 AND b = 2) OR (a = 1 AND c = 3)"));
  ASSERT_EQ(dnf.size(), 2u);
  EXPECT_EQ(dnf[0].size(), 2u);
  EXPECT_EQ(dnf[1].size(), 2u);
  // "a AND (b OR c)" distributes to the same two-conjunction form.
  auto dnf2 = ToDnf(*WhereOf("a = 1 AND (b = 2 OR c = 3)"));
  ASSERT_EQ(dnf2.size(), 2u);
  EXPECT_EQ(dnf2[0].size(), 2u);
}

TEST(Dnf, NegationPushedIntoComparisons) {
  auto dnf = ToDnf(*WhereOf("NOT (a < 5)"));
  ASSERT_EQ(dnf.size(), 1u);
  ASSERT_EQ(dnf[0].size(), 1u);
  EXPECT_EQ(dnf[0][0]->kind, ExprKind::kCompare);
  EXPECT_EQ(dnf[0][0]->op, CompareOp::kGe);
}

TEST(Dnf, DeMorgan) {
  // NOT (a=1 AND b=2) -> (a<>1) OR (b<>2).
  auto dnf = ToDnf(*WhereOf("NOT (a = 1 AND b = 2)"));
  ASSERT_EQ(dnf.size(), 2u);
  EXPECT_EQ(dnf[0][0]->op, CompareOp::kNe);
}

TEST(Dnf, NotBetweenSplitsIntoRange) {
  auto dnf = ToDnf(*WhereOf("NOT (a BETWEEN 2 AND 5)"));
  ASSERT_EQ(dnf.size(), 2u);
  EXPECT_EQ(dnf[0][0]->op, CompareOp::kLt);
  EXPECT_EQ(dnf[1][0]->op, CompareOp::kGt);
}

TEST(Dnf, NotInFlipsFlag) {
  auto dnf = ToDnf(*WhereOf("NOT (a IN (1, 2))"));
  ASSERT_EQ(dnf.size(), 1u);
  EXPECT_EQ(dnf[0][0]->kind, ExprKind::kInList);
  EXPECT_TRUE(dnf[0][0]->negated);
}

TEST(Dnf, DoubleNegationCancels) {
  auto dnf = ToDnf(*WhereOf("NOT (NOT (a = 1))"));
  ASSERT_EQ(dnf.size(), 1u);
  EXPECT_EQ(dnf[0][0]->op, CompareOp::kEq);
}

TEST(Dnf, CapBoundsBlowup) {
  // (a1 OR a2) AND (b1 OR b2) AND ... expands exponentially; the cap must
  // bound the result.
  std::string sql = "(a = 1 OR a = 2)";
  for (char c = 'b'; c <= 'j'; ++c) {
    sql += std::string(" AND (") + c + " = 1 OR " + c + " = 2)";
  }
  auto dnf = ToDnf(*WhereOf(sql), 16);
  EXPECT_LE(dnf.size(), 16u);
  EXPECT_GE(dnf.size(), 1u);
}

TEST(Dnf, ExtractConjunctionAtomsFastPath) {
  std::vector<const Expr*> atoms;
  ExprPtr conj = WhereOf("a = 1 AND b > 2 AND c IS NULL");
  EXPECT_TRUE(ExtractConjunctionAtoms(*conj, &atoms));
  EXPECT_EQ(atoms.size(), 3u);

  atoms.clear();
  ExprPtr with_or = WhereOf("a = 1 AND (b = 2 OR c = 3)");
  EXPECT_FALSE(ExtractConjunctionAtoms(*with_or, &atoms));
}

// Property test: ToDnf(e) is logically equivalent to e on random
// assignments of small integer domains.
class DnfEquivalence : public ::testing::TestWithParam<const char*> {};

TEST_P(DnfEquivalence, EquivalentOnRandomAssignments) {
  ExprPtr expr = WhereOf(GetParam());
  auto dnf = ToDnf(*expr, 1024);
  Random rng(42);
  for (int trial = 0; trial < 300; ++trial) {
    MapResolver r({{"a", Value(rng.UniformInt(0, 4))},
                   {"b", Value(rng.UniformInt(0, 4))},
                   {"c", Value(rng.UniformInt(0, 4))},
                   {"d", Value(rng.UniformInt(0, 4))}});
    EXPECT_EQ(EvaluatePredicate(*expr, r), EvalDnf(dnf, r))
        << "expr: " << GetParam() << " trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Formulas, DnfEquivalence,
    ::testing::Values(
        "a = 1",
        "a = 1 AND b = 2",
        "a = 1 OR b = 2",
        "(a = 1 AND b = 2) OR (a = 1 AND c = 3)",
        "a = 1 AND (b = 2 OR c = 3)",
        "NOT (a = 1 AND b = 2)",
        "NOT (a = 1 OR (b = 2 AND c = 3))",
        "a BETWEEN 1 AND 3 OR NOT (b BETWEEN 0 AND 2)",
        "a IN (1, 2) AND NOT (b IN (2, 3))",
        "(a < 2 OR b > 3) AND (c <= 1 OR d >= 4)",
        "NOT (NOT (a = 1 OR b = 2))",
        "(a = 1 OR b = 2) AND (a = 2 OR c = 1) AND d <> 3"));

}  // namespace
}  // namespace autoindex
