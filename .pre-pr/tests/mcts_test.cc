// MCTS index selection (Sec. IV-B): finding beneficial additions, removing
// negative indexes, respecting storage budgets, combined-index effects,
// and incremental tree reuse.

#include <gtest/gtest.h>

#include <algorithm>

#include "check/validator.h"
#include "core/benefit_estimator.h"
#include "core/greedy.h"
#include "core/mcts.h"
#include "core/query_template.h"
#include "workload/workload.h"

namespace autoindex {
namespace {

class MctsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_.CreateTable("t", Schema({{"a", ValueType::kInt},
                                 {"b", ValueType::kInt},
                                 {"c", ValueType::kInt}}));
    std::vector<Row> rows;
    for (int i = 0; i < 30000; ++i) {
      rows.push_back({Value(int64_t(i)), Value(int64_t(i % 1000)),
                      Value(int64_t(i % 3))});
    }
    ASSERT_TRUE(db_.BulkInsert("t", std::move(rows)).ok());
    db_.Analyze();
    estimator_ = std::make_unique<IndexBenefitEstimator>(&db_);
  }

  // Builds a workload model from raw SQL with weights.
  WorkloadModel MakeWorkload(
      const std::vector<std::pair<std::string, double>>& queries) {
    for (const auto& [sql, weight] : queries) {
      QueryTemplate* t = store_.Observe(sql);
      EXPECT_NE(t, nullptr) << sql;
      t->frequency = weight;
    }
    return WorkloadModel::FromTemplates(store_.TemplatesByFrequency());
  }

  Database db_;
  TemplateStore store_{1000};
  std::unique_ptr<IndexBenefitEstimator> estimator_;
};

TEST_F(MctsTest, FindsObviousIndex) {
  WorkloadModel w = MakeWorkload({{"SELECT b FROM t WHERE a = 123", 100.0}});
  MctsConfig config;
  config.iterations = 60;
  MctsIndexSelector selector(&db_, estimator_.get(), config);
  MctsResult result = selector.Run(IndexConfig(), {IndexDef("t", {"a"})}, w);
  EXPECT_GT(result.best_benefit, 0.0);
  ASSERT_EQ(result.to_add.size(), 1u);
  EXPECT_TRUE(result.to_add[0] == IndexDef("t", {"a"}));
  EXPECT_TRUE(result.to_remove.empty());
}

TEST_F(MctsTest, RemovesNegativeIndexUnderWriteHeavyLoad) {
  // Index on b is never read but every insert pays to maintain it.
  WorkloadModel w = MakeWorkload(
      {{"INSERT INTO t VALUES (1, 2, 3)", 500.0},
       {"SELECT c FROM t WHERE a = 7", 5.0}});
  IndexConfig existing({IndexDef("t", {"b"})});
  MctsConfig config;
  config.iterations = 80;
  MctsIndexSelector selector(&db_, estimator_.get(), config);
  MctsResult result = selector.Run(existing, {IndexDef("t", {"a"})}, w);
  const bool removed_b = std::any_of(
      result.to_remove.begin(), result.to_remove.end(),
      [](const IndexDef& d) { return d == IndexDef("t", {"b"}); });
  EXPECT_TRUE(removed_b)
      << "write-heavy workload should retire the unused index";
  EXPECT_GT(result.best_benefit, 0.0);
}

TEST_F(MctsTest, RespectsStorageBudget) {
  WorkloadModel w = MakeWorkload(
      {{"SELECT b FROM t WHERE a = 123", 50.0},
       {"SELECT a FROM t WHERE b = 5", 50.0}});
  // Budget that fits roughly one index on t (each ~30000 * 20B).
  const size_t one_index_bytes =
      IndexConfig({IndexDef("t", {"a"})}).TotalBytes(db_.catalog());
  MctsConfig config;
  config.iterations = 80;
  config.storage_budget_bytes = one_index_bytes + kPageSizeBytes;
  MctsIndexSelector selector(&db_, estimator_.get(), config);
  MctsResult result = selector.Run(
      IndexConfig(), {IndexDef("t", {"a"}), IndexDef("t", {"b"})}, w);
  EXPECT_LE(result.best_config.TotalBytes(db_.catalog()),
            config.storage_budget_bytes);
  EXPECT_LE(result.to_add.size(), 1u);
}

TEST_F(MctsTest, UnlimitedBudgetTakesBothIndexes) {
  WorkloadModel w = MakeWorkload(
      {{"SELECT b FROM t WHERE a = 123", 50.0},
       {"SELECT a FROM t WHERE b = 5", 50.0}});
  MctsConfig config;
  config.iterations = 120;
  MctsIndexSelector selector(&db_, estimator_.get(), config);
  MctsResult result = selector.Run(
      IndexConfig(), {IndexDef("t", {"a"}), IndexDef("t", {"b"})}, w);
  EXPECT_EQ(result.to_add.size(), 2u);
}

TEST_F(MctsTest, FigFourBudgetScenarioBeatsGreedyChoice) {
  // The paper's Fig. 4 situation: candidate I3 has the highest individual
  // benefit but fills the whole budget; the pair {I1, I2} fits together
  // and beats it. Greedy's top-k picks I3 and stalls; MCTS's exploration
  // must find the pair.
  db_.CreateTable("big1", Schema({{"w", ValueType::kString, 40},
                                  {"p", ValueType::kInt}}));
  db_.CreateTable("s1", Schema({{"k1", ValueType::kInt},
                                {"v", ValueType::kInt}}));
  db_.CreateTable("s2", Schema({{"k2", ValueType::kInt},
                                {"v", ValueType::kInt}}));
  std::vector<Row> rows;
  for (int i = 0; i < 30000; ++i) {
    rows.push_back({Value("key_" + std::to_string(i)),
                    Value(int64_t(i))});
  }
  ASSERT_TRUE(db_.BulkInsert("big1", std::move(rows)).ok());
  for (const char* name : {"s1", "s2"}) {
    rows.clear();
    for (int i = 0; i < 15000; ++i) {
      rows.push_back({Value(int64_t(i)), Value(int64_t(i))});
    }
    ASSERT_TRUE(db_.BulkInsert(name, std::move(rows)).ok());
  }
  db_.Analyze();

  const IndexDef i3("big1", {"w"});  // wide string key: large index
  const IndexDef i1("s1", {"k1"});
  const IndexDef i2("s2", {"k2"});
  const size_t size_i3 = IndexConfig({i3}).TotalBytes(db_.catalog());
  const size_t size_i1 = IndexConfig({i1}).TotalBytes(db_.catalog());
  ASSERT_GT(size_i3, 2 * size_i1) << "scenario needs a dominant big index";

  WorkloadModel w = MakeWorkload({
      {"SELECT p FROM big1 WHERE w = 'key_123'", 50.0},
      {"SELECT v FROM s1 WHERE k1 = 5", 78.0},
      {"SELECT v FROM s2 WHERE k2 = 9", 78.0},
  });
  // Budget: I3 alone fits; I1+I2 fit; I3 plus either small one does not.
  const size_t budget = size_i3 + kPageSizeBytes;
  ASSERT_LE(2 * size_i1, budget);
  ASSERT_GT(size_i3 + size_i1, budget);

  // Greedy (top-k individual benefit) takes the big index and stalls.
  GreedyConfig gconfig;
  gconfig.storage_budget_bytes = budget;
  IndexBenefitEstimator gest(&db_);
  GreedyResult greedy = GreedySelector(&db_, &gest, gconfig)
                            .Run(IndexConfig(), {i3, i1, i2}, w);
  ASSERT_EQ(greedy.to_add.size(), 1u);
  EXPECT_TRUE(greedy.to_add[0] == i3);

  // MCTS explores past the greedy trap and lands on {I1, I2}.
  MctsConfig config;
  config.iterations = 200;
  config.storage_budget_bytes = budget;
  MctsIndexSelector selector(&db_, estimator_.get(), config);
  MctsResult result = selector.Run(IndexConfig(), {i3, i1, i2}, w);
  EXPECT_TRUE(result.best_config.Contains(i1));
  EXPECT_TRUE(result.best_config.Contains(i2));
  EXPECT_FALSE(result.best_config.Contains(i3));
  EXPECT_LT(result.best_cost, greedy.final_cost)
      << "MCTS must beat the greedy selection under the budget";
}

TEST_F(MctsTest, NoCandidatesNoChanges) {
  WorkloadModel w = MakeWorkload({{"SELECT b FROM t WHERE a = 1", 10.0}});
  MctsIndexSelector selector(&db_, estimator_.get());
  MctsResult result = selector.Run(IndexConfig(), {}, w);
  EXPECT_TRUE(result.to_add.empty());
  EXPECT_TRUE(result.to_remove.empty());
  EXPECT_DOUBLE_EQ(result.best_benefit, 0.0);
}

TEST_F(MctsTest, KeepsBeneficialExistingIndex) {
  WorkloadModel w = MakeWorkload({{"SELECT b FROM t WHERE a = 123", 100.0}});
  IndexConfig existing({IndexDef("t", {"a"})});
  MctsIndexSelector selector(&db_, estimator_.get());
  MctsResult result = selector.Run(existing, {IndexDef("t", {"b"})}, w);
  EXPECT_TRUE(result.best_config.Contains(IndexDef("t", {"a"})));
}

TEST_F(MctsTest, IncrementalRebaseReusesTree) {
  WorkloadModel w = MakeWorkload(
      {{"SELECT b FROM t WHERE a = 123", 50.0},
       {"SELECT a FROM t WHERE b = 5", 50.0}});
  MctsConfig config;
  config.iterations = 60;
  MctsIndexSelector selector(&db_, estimator_.get(), config);
  MctsResult first = selector.Run(
      IndexConfig(), {IndexDef("t", {"a"}), IndexDef("t", {"b"})}, w);
  ASSERT_FALSE(first.to_add.empty());
  const size_t tree_after_first = selector.tree_size();
  EXPECT_GT(tree_after_first, 1u);

  // Apply the recommendation, then rerun from the new root: the rebase
  // must succeed (tree persists) and the second run should be consistent
  // (no oscillation back).
  MctsResult second =
      selector.Run(first.best_config, {IndexDef("t", {"a"}),
                                       IndexDef("t", {"b"})}, w);
  EXPECT_TRUE(second.to_remove.empty())
      << "second round should not undo the just-applied beneficial indexes";
}

TEST_F(MctsTest, DeterministicForFixedSeed) {
  WorkloadModel w = MakeWorkload({{"SELECT b FROM t WHERE a = 123", 10.0}});
  MctsConfig config;
  config.iterations = 40;
  config.seed = 99;
  MctsIndexSelector s1(&db_, estimator_.get(), config);
  MctsIndexSelector s2(&db_, estimator_.get(), config);
  MctsResult r1 = s1.Run(IndexConfig(), {IndexDef("t", {"a"})}, w);
  MctsResult r2 = s2.Run(IndexConfig(), {IndexDef("t", {"a"})}, w);
  EXPECT_EQ(r1.best_cost, r2.best_cost);
  EXPECT_EQ(r1.to_add.size(), r2.to_add.size());
}

TEST_F(MctsTest, EarlyStopViaPatience) {
  WorkloadModel w = MakeWorkload({{"SELECT b FROM t WHERE a = 123", 10.0}});
  MctsConfig config;
  config.iterations = 10000;
  config.patience = 10;
  MctsIndexSelector selector(&db_, estimator_.get(), config);
  MctsResult result = selector.Run(IndexConfig(), {IndexDef("t", {"a"})}, w);
  EXPECT_LT(result.iterations_run, 10000u);
}

// Regression for the tree_size drift fixed alongside the validator work:
// RebaseRoot used to leave tree_size() counting nodes of the discarded
// siblings, so the policy-tree validator (which recounts with a fresh
// walk) would flag every post-rebase tree. Two rounds with the
// recommendation applied force a rebase; the tree must then validate.
TEST_F(MctsTest, PolicyTreeValidatesAfterRunsAndRebase) {
  WorkloadModel w = MakeWorkload(
      {{"SELECT b FROM t WHERE a = 123", 50.0},
       {"SELECT a FROM t WHERE b = 5", 50.0}});
  MctsConfig config;
  config.iterations = 60;
  MctsIndexSelector selector(&db_, estimator_.get(), config);
  MctsResult first = selector.Run(
      IndexConfig(), {IndexDef("t", {"a"}), IndexDef("t", {"b"})}, w);
  EXPECT_TRUE(selector.ValidateTree().ok())
      << selector.ValidateTree().ToString();
  ASSERT_FALSE(first.to_add.empty());

  selector.Run(first.best_config,
               {IndexDef("t", {"a"}), IndexDef("t", {"b"})}, w);
  const CheckReport report = CheckAll(db_, selector);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

// Gamma sweep: any reasonable exploration constant finds the obvious
// index; this guards the UCB formula against degenerate behavior.
class MctsGammaSweep : public ::testing::TestWithParam<double> {};

TEST_P(MctsGammaSweep, FindsIndexAcrossGammas) {
  Database db;
  db.CreateTable("t", Schema({{"a", ValueType::kInt},
                              {"b", ValueType::kInt}}));
  std::vector<Row> rows;
  for (int i = 0; i < 20000; ++i) {
    rows.push_back({Value(int64_t(i)), Value(int64_t(i % 10))});
  }
  ASSERT_TRUE(db.BulkInsert("t", std::move(rows)).ok());
  db.Analyze();
  IndexBenefitEstimator estimator(&db);
  TemplateStore store(10);
  QueryTemplate* t = store.Observe("SELECT b FROM t WHERE a = 55");
  ASSERT_NE(t, nullptr);
  t->frequency = 100.0;
  WorkloadModel w =
      WorkloadModel::FromTemplates(store.TemplatesByFrequency());
  MctsConfig config;
  config.gamma = GetParam();
  config.iterations = 60;
  MctsIndexSelector selector(&db, &estimator, config);
  MctsResult result = selector.Run(IndexConfig(), {IndexDef("t", {"a"})}, w);
  EXPECT_EQ(result.to_add.size(), 1u) << "gamma=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Gammas, MctsGammaSweep,
                         ::testing::Values(0.1, 0.3, 0.7, 1.5, 3.0));

}  // namespace
}  // namespace autoindex
