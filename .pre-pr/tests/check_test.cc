// Correctness-tooling layer (src/check/): healthy structures pass every
// validator, and each validator actually detects an injected corruption —
// an always-green checker would be worse than none, so every test here
// first proves health, then damages one structure through a test-only
// hook and asserts the precise report.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "check/btree_validator.h"
#include "check/catalog_validator.h"
#include "check/heap_validator.h"
#include "check/mcts_validator.h"
#include "check/validator.h"
#include "core/benefit_estimator.h"
#include "core/mcts.h"
#include "core/query_template.h"
#include "engine/database.h"
#include "workload/workload.h"

namespace autoindex {
namespace {

// True when any reported issue's detail mentions `needle`.
bool ReportMentions(const CheckReport& report, const std::string& needle) {
  return std::any_of(report.issues().begin(), report.issues().end(),
                     [&](const CheckIssue& issue) {
                       return issue.detail.find(needle) != std::string::npos;
                     });
}

class CheckTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto created = db_.CreateTable("t", Schema({{"a", ValueType::kInt},
                                                {"b", ValueType::kInt},
                                                {"c", ValueType::kInt}}));
    ASSERT_TRUE(created.ok());
    std::vector<Row> rows;
    for (int i = 0; i < 5000; ++i) {
      rows.push_back({Value(int64_t(i)), Value(int64_t(i % 100)),
                      Value(int64_t(i % 7))});
    }
    ASSERT_TRUE(db_.BulkInsert("t", std::move(rows)).ok());
    db_.Analyze();
  }

  Database db_;
};

TEST_F(CheckTest, HealthyDatabasePassesEveryValidator) {
  ASSERT_TRUE(db_.CreateIndex(IndexDef("t", {"a"})).ok());
  ASSERT_TRUE(db_.CreateIndex(IndexDef("t", {"b", "c"})).ok());
  const CheckReport report = CheckAll(db_);
  EXPECT_TRUE(report.ok()) << report.ToString();
  // "OK" must mean "looked and found nothing", not "looked at nothing".
  EXPECT_GT(report.structures_checked(), 3u);
  EXPECT_NE(report.ToString().find("OK"), std::string::npos);
}

TEST_F(CheckTest, HealthyPartitionedLocalIndexPasses) {
  HeapTable* table = db_.catalog().GetTable("t");
  ASSERT_TRUE(table->SetPartitioning("b", 8));
  ASSERT_TRUE(
      db_.CreateIndex(IndexDef("t", {"a"}, IndexKind::kLocal)).ok());
  const CheckReport report = CheckAll(db_);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

// --- B+Tree corruptions -------------------------------------------------

TEST_F(CheckTest, DetectsLeafOrderCorruption) {
  ASSERT_TRUE(db_.CreateIndex(IndexDef("t", {"a"})).ok());
  BuiltIndex* index = db_.index_manager().AllIndexes()[0];
  ASSERT_TRUE(index->tree().TestOnlyCorruptLeafOrder());
  const CheckReport report = CheckAll(db_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(ReportMentions(report, "out of order")) << report.ToString();
}

TEST_F(CheckTest, DetectsBrokenLeafChain) {
  ASSERT_TRUE(db_.CreateIndex(IndexDef("t", {"a"})).ok());
  BuiltIndex* index = db_.index_manager().AllIndexes()[0];
  ASSERT_TRUE(index->tree().TestOnlyBreakLeafChain());
  const CheckReport report = CheckAll(db_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(ReportMentions(report, "leaf chain")) << report.ToString();
}

TEST_F(CheckTest, DetectsEntryCountDrift) {
  ASSERT_TRUE(db_.CreateIndex(IndexDef("t", {"a"})).ok());
  BuiltIndex* index = db_.index_manager().AllIndexes()[0];
  index->tree().TestOnlySetNumEntries(index->tree().num_entries() + 3);
  const CheckReport report = CheckAll(db_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(ReportMentions(report, "num_entries")) << report.ToString();
}

TEST_F(CheckTest, DetectsHeightDrift) {
  ASSERT_TRUE(db_.CreateIndex(IndexDef("t", {"a"})).ok());
  BuiltIndex* index = db_.index_manager().AllIndexes()[0];
  index->tree().TestOnlySetHeight(index->tree().height() + 1);
  const CheckReport report = CheckAll(db_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(ReportMentions(report, "height")) << report.ToString();
}

// --- Heap-table corruptions ---------------------------------------------

TEST_F(CheckTest, DetectsLiveRowCounterDrift) {
  HeapTable* table = db_.catalog().GetTable("t");
  table->TestOnlySetLiveRows(table->num_rows() + 5);
  const CheckReport report = CheckAll(db_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(ReportMentions(report, "live-row counter"))
      << report.ToString();
}

TEST_F(CheckTest, DetectsRowArityCorruption) {
  HeapTable* table = db_.catalog().GetTable("t");
  ASSERT_TRUE(table->TestOnlyTruncateRow(42));
  const CheckReport report = CheckAll(db_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(ReportMentions(report, "schema declares"))
      << report.ToString();
}

// --- Catalog / index-manager corruptions --------------------------------

TEST_F(CheckTest, DetectsIndexOnDroppedTable) {
  ASSERT_TRUE(db_.CreateIndex(IndexDef("t", {"a"})).ok());
  // Dropping the table straight through the catalog bypasses the index
  // manager — exactly the inconsistency the validator exists to catch.
  ASSERT_TRUE(db_.catalog().DropTable("t").ok());
  const CheckReport report = CheckAll(db_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(ReportMentions(report, "dropped table")) << report.ToString();
}

TEST_F(CheckTest, DetectsHypotheticalShadowingBuiltIndex) {
  const IndexDef def("t", {"a"});
  ASSERT_TRUE(db_.CreateIndex(def).ok());
  ASSERT_TRUE(db_.index_manager().AddHypothetical(def).ok());
  const CheckReport report = CheckAll(db_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(ReportMentions(report, "physical index set"))
      << report.ToString();
}

TEST_F(CheckTest, DetectsIndexEntryDriftAgainstTable) {
  ASSERT_TRUE(db_.CreateIndex(IndexDef("t", {"a"})).ok());
  // Delete a row behind the index manager's back: the index now holds an
  // entry for a dead row (retirement-drift class of bug).
  ASSERT_TRUE(db_.catalog().GetTable("t")->Delete(17).ok());
  const CheckReport report = CheckAll(db_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(ReportMentions(report, "live rows")) << report.ToString();
}

// --- Physical-plan corruptions ------------------------------------------

class CheckPlanTest : public CheckTest {
 protected:
  // Runs a SELECT so the executor retains a plan snapshot, proves the
  // healthy snapshot passes, and hands the test a mutable pointer to it.
  PlanNodeSnapshot* ExecuteAndGetPlan() {
    auto r = db_.Execute("SELECT a, b FROM t WHERE b = 7 ORDER BY a LIMIT 5");
    EXPECT_TRUE(r.ok());
    const CheckReport healthy = CheckAll(db_);
    EXPECT_TRUE(healthy.ok()) << healthy.ToString();
    PlanNodeSnapshot* plan = db_.executor().TestOnlyMutableLastPlan();
    EXPECT_NE(plan, nullptr);
    return plan;
  }

  // The plan validator's issues all carry the "physical_plan" attribution.
  static bool PlanIssueReported(const CheckReport& report) {
    return std::any_of(report.issues().begin(), report.issues().end(),
                       [](const CheckIssue& issue) {
                         return issue.validator == "physical_plan";
                       });
  }
};

TEST_F(CheckPlanTest, DetectsCounterSumDrift) {
  PlanNodeSnapshot* plan = ExecuteAndGetPlan();
  ASSERT_NE(plan, nullptr);
  plan->actual.rows_out += 3;  // root no longer matches stats.rows_returned
  const CheckReport report = CheckAll(db_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(PlanIssueReported(report)) << report.ToString();
  EXPECT_TRUE(ReportMentions(report, "rows_returned")) << report.ToString();
}

TEST_F(CheckPlanTest, DetectsUnknownOperator) {
  PlanNodeSnapshot* plan = ExecuteAndGetPlan();
  ASSERT_NE(plan, nullptr);
  plan->op = "Bogus";
  const CheckReport report = CheckAll(db_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(ReportMentions(report, "unknown operator"))
      << report.ToString();
}

TEST_F(CheckPlanTest, DetectsNegativeCounter) {
  PlanNodeSnapshot* plan = ExecuteAndGetPlan();
  ASSERT_NE(plan, nullptr);
  plan->actual.comparisons = -1;
  const CheckReport report = CheckAll(db_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(ReportMentions(report, "negative counter"))
      << report.ToString();
}

TEST_F(CheckPlanTest, DetectsWidthPropagationViolation) {
  PlanNodeSnapshot* plan = ExecuteAndGetPlan();
  ASSERT_NE(plan, nullptr);
  plan->out_width = 7;  // Project must emit width 1
  const CheckReport report = CheckAll(db_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(ReportMentions(report, "width")) << report.ToString();
}

TEST_F(CheckPlanTest, PlanValidatorNoOpsBeforeAnyQuery) {
  // A fresh database has no retained plan; CheckAll must stay green.
  const CheckReport report = CheckAll(db_);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

// --- MCTS policy-tree corruptions ---------------------------------------

class CheckMctsTest : public CheckTest {
 protected:
  void SetUp() override {
    CheckTest::SetUp();
    estimator_ = std::make_unique<IndexBenefitEstimator>(&db_);
    selector_ = std::make_unique<MctsIndexSelector>(&db_, estimator_.get());
    QueryTemplate* t = store_.Observe("SELECT b FROM t WHERE a = 55");
    ASSERT_NE(t, nullptr);
    t->frequency = 100.0;
    WorkloadModel w =
        WorkloadModel::FromTemplates(store_.TemplatesByFrequency());
    selector_->Run(IndexConfig(), {IndexDef("t", {"a"})}, w);
  }

  TemplateStore store_{100};
  std::unique_ptr<IndexBenefitEstimator> estimator_;
  std::unique_ptr<MctsIndexSelector> selector_;
};

TEST_F(CheckMctsTest, HealthyPolicyTreePasses) {
  const CheckReport report = CheckAll(db_, *selector_);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_TRUE(selector_->ValidateTree().ok());
}

TEST_F(CheckMctsTest, DetectsVisitCountCorruption) {
  ASSERT_TRUE(selector_->TestOnlyCorruptVisitCount());
  const CheckReport report = CheckAll(db_, *selector_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(ReportMentions(report, "visits")) << report.ToString();
}

TEST_F(CheckMctsTest, DetectsBenefitOutOfBounds) {
  ASSERT_TRUE(selector_->TestOnlyCorruptBenefit());
  const CheckReport report = CheckAll(db_, *selector_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(ReportMentions(report, "[0, 1]")) << report.ToString();
}

TEST_F(CheckMctsTest, MctsValidatorNoOpsWithoutSelector) {
  // CheckAll(db) alone must not try to reach a policy tree.
  const CheckReport report = CheckAll(db_);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

// --- Registry and debug-mode wiring -------------------------------------

class CountingValidator : public Validator {
 public:
  explicit CountingValidator(int* runs) : runs_(runs) {}
  const char* name() const override { return "counting"; }
  void Validate(const CheckContext&, CheckReport* report) const override {
    ++*runs_;
    report->NoteStructureChecked();
  }

 private:
  int* runs_;
};

TEST(ValidatorRegistryTest, RunsRegisteredValidatorsInOrder) {
  ValidatorRegistry registry;
  int runs = 0;
  registry.Register(std::make_unique<CountingValidator>(&runs));
  registry.Register(std::make_unique<CountingValidator>(&runs));
  EXPECT_EQ(registry.size(), 2u);
  const CheckReport report = registry.RunAll(CheckContext{});
  EXPECT_EQ(runs, 2);
  EXPECT_EQ(report.structures_checked(), 2u);
  EXPECT_TRUE(report.ok());
}

TEST(ValidatorRegistryTest, DefaultRegistryCarriesBuiltInValidators) {
  EXPECT_GE(ValidatorRegistry::Default().size(), 4u);
}

TEST_F(CheckTest, DebugHookFailsMutationsAfterCorruption) {
  ASSERT_TRUE(db_.CreateIndex(IndexDef("t", {"a"})).ok());
  InstallDebugChecks(&db_);
  EXPECT_TRUE(db_.debug_checks_enabled());

  // Healthy: mutations pass through the hook.
  EXPECT_TRUE(db_.Execute("INSERT INTO t VALUES (90001, 1, 2)").ok());

  // Corrupt, then mutate: the statement itself succeeds at the storage
  // level but the post-mutation check must surface the damage.
  db_.catalog().GetTable("t")->TestOnlySetLiveRows(1);
  const auto result = db_.Execute("INSERT INTO t VALUES (90002, 1, 2)");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("invariant check failed"),
            std::string::npos)
      << result.status().ToString();

  // SELECTs are not gated by the mutation hook.
  EXPECT_TRUE(db_.Execute("SELECT a FROM t WHERE a = 5").ok());

  InstallDebugChecks(&db_, /*install=*/false);
  EXPECT_FALSE(db_.debug_checks_enabled());
  EXPECT_TRUE(db_.Execute("INSERT INTO t VALUES (90003, 1, 2)").ok());
}

TEST_F(CheckTest, ReportToStringNamesValidatorAndStructure) {
  ASSERT_TRUE(db_.CreateIndex(IndexDef("t", {"a"})).ok());
  BuiltIndex* index = db_.index_manager().AllIndexes()[0];
  index->tree().TestOnlySetNumEntries(0);
  const CheckReport report = CheckAll(db_);
  ASSERT_FALSE(report.ok());
  const std::string rendered = report.ToString();
  EXPECT_NE(rendered.find("[btree]"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("idx_t_a"), std::string::npos) << rendered;
}

}  // namespace
}  // namespace autoindex
