#include <gtest/gtest.h>

#include "check/validator.h"
#include "index/index_def.h"
#include "index/index_manager.h"
#include "storage/catalog.h"
#include "util/random.h"

namespace autoindex {
namespace {

class IndexManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto t = catalog_.CreateTable(
        "t", Schema({{"a", ValueType::kInt},
                     {"b", ValueType::kInt},
                     {"c", ValueType::kString}}));
    ASSERT_TRUE(t.ok());
    table_ = *t;
    for (int i = 0; i < 500; ++i) {
      ASSERT_TRUE(table_
                      ->Insert({Value(int64_t(i)), Value(int64_t(i % 10)),
                                Value("s" + std::to_string(i % 7))})
                      .ok());
    }
  }

  Catalog catalog_;
  HeapTable* table_ = nullptr;
};

TEST_F(IndexManagerTest, IndexDefBasics) {
  IndexDef def("T", {"A", "b"});
  EXPECT_EQ(def.table, "t");
  EXPECT_EQ(def.Key(), "t(a,b)");
  EXPECT_EQ(def.DisplayName(), "idx_t_a_b");
  IndexDef named("my_idx", "t", {"a"});
  EXPECT_EQ(named.DisplayName(), "my_idx");
}

TEST_F(IndexManagerTest, PrefixRelation) {
  IndexDef a("t", {"a"});
  IndexDef ab("t", {"a", "b"});
  IndexDef ba("t", {"b", "a"});
  EXPECT_TRUE(a.IsPrefixOf(ab));
  EXPECT_TRUE(a.IsPrefixOf(a));
  EXPECT_FALSE(ab.IsPrefixOf(a));
  EXPECT_FALSE(a.IsPrefixOf(ba));
  IndexDef other("u", {"a"});
  EXPECT_FALSE(a.IsPrefixOf(other));
}

TEST_F(IndexManagerTest, CreateBuildsFromExistingRows) {
  IndexManager mgr(&catalog_);
  ASSERT_TRUE(mgr.CreateIndex(IndexDef("t", {"b"})).ok());
  auto indexes = mgr.IndexesOnTable("t");
  ASSERT_EQ(indexes.size(), 1u);
  EXPECT_EQ(indexes[0]->tree().num_entries(), 500u);
  // 50 rows per b value.
  EXPECT_EQ(indexes[0]->tree().PrefixLookup({Value(int64_t(3))}).size(), 50u);
}

TEST_F(IndexManagerTest, RejectsBadDefinitions) {
  IndexManager mgr(&catalog_);
  EXPECT_FALSE(mgr.CreateIndex(IndexDef("nope", {"a"})).ok());
  EXPECT_FALSE(mgr.CreateIndex(IndexDef("t", {"nope"})).ok());
  EXPECT_FALSE(mgr.CreateIndex(IndexDef("t", {})).ok());
  ASSERT_TRUE(mgr.CreateIndex(IndexDef("t", {"a"})).ok());
  EXPECT_FALSE(mgr.CreateIndex(IndexDef("t", {"a"})).ok());  // duplicate
}

TEST_F(IndexManagerTest, DropByKeyOrName) {
  IndexManager mgr(&catalog_);
  ASSERT_TRUE(mgr.CreateIndex(IndexDef("t", {"a"})).ok());
  ASSERT_TRUE(mgr.CreateIndex(IndexDef("t", {"b"})).ok());
  EXPECT_TRUE(mgr.DropIndex("t(a)").ok());
  EXPECT_TRUE(mgr.DropIndex("idx_t_b").ok());
  EXPECT_EQ(mgr.num_indexes(), 0u);
  EXPECT_FALSE(mgr.DropIndex("t(a)").ok());
}

TEST_F(IndexManagerTest, WriteHooksMaintainIndexes) {
  IndexManager mgr(&catalog_);
  ASSERT_TRUE(mgr.CreateIndex(IndexDef("t", {"b"})).ok());
  BuiltIndex* index = mgr.IndexesOnTable("t")[0];

  // Insert.
  auto rid = table_->Insert({Value(int64_t(1000)), Value(int64_t(42)),
                             Value("zz")});
  ASSERT_TRUE(rid.ok());
  EXPECT_EQ(mgr.OnInsert("t", *rid, table_->Get(*rid)), 1u);
  EXPECT_EQ(index->tree().PrefixLookup({Value(int64_t(42))}).size(), 1u);

  // Update that changes the key.
  const Row old_row = table_->Get(*rid);
  Row new_row = old_row;
  new_row[1] = Value(int64_t(43));
  ASSERT_TRUE(table_->Update(*rid, new_row).ok());
  EXPECT_EQ(mgr.OnUpdate("t", *rid, old_row, new_row), 1u);
  EXPECT_EQ(index->tree().PrefixLookup({Value(int64_t(42))}).size(), 0u);
  EXPECT_EQ(index->tree().PrefixLookup({Value(int64_t(43))}).size(), 1u);

  // Update that does not touch the key is free.
  Row same = new_row;
  same[0] = Value(int64_t(1001));
  EXPECT_EQ(mgr.OnUpdate("t", *rid, new_row, same), 0u);

  // Delete.
  EXPECT_EQ(mgr.OnDelete("t", *rid, same), 1u);
  EXPECT_EQ(index->tree().PrefixLookup({Value(int64_t(43))}).size(), 0u);
}

TEST_F(IndexManagerTest, HypotheticalIndexesEstimateStats) {
  IndexManager mgr(&catalog_);
  ASSERT_TRUE(mgr.AddHypothetical(IndexDef("t", {"a", "b"})).ok());
  ASSERT_EQ(mgr.hypothetical().size(), 1u);
  const HypotheticalIndex& hypo = mgr.hypothetical()[0];
  EXPECT_EQ(hypo.est_entries, 500u);
  EXPECT_GE(hypo.est_height, 1u);
  EXPECT_GE(hypo.est_bytes, kPageSizeBytes);

  auto views = mgr.StatsOnTable("t");
  ASSERT_EQ(views.size(), 1u);
  EXPECT_TRUE(views[0].hypothetical);
  mgr.ClearHypothetical();
  EXPECT_TRUE(mgr.StatsOnTable("t").empty());
}

TEST_F(IndexManagerTest, StatsViewMixesBuiltAndHypothetical) {
  IndexManager mgr(&catalog_);
  ASSERT_TRUE(mgr.CreateIndex(IndexDef("t", {"a"})).ok());
  ASSERT_TRUE(mgr.AddHypothetical(IndexDef("t", {"b"})).ok());
  auto views = mgr.StatsOnTable("t");
  ASSERT_EQ(views.size(), 2u);
  int built = 0, hypo = 0;
  for (const auto& v : views) (v.hypothetical ? hypo : built)++;
  EXPECT_EQ(built, 1);
  EXPECT_EQ(hypo, 1);
}

TEST_F(IndexManagerTest, SizeAccounting) {
  IndexManager mgr(&catalog_);
  ASSERT_TRUE(mgr.CreateIndex(IndexDef("t", {"a"})).ok());
  EXPECT_GE(mgr.TotalIndexBytes(), kPageSizeBytes);
  const size_t one = mgr.TotalIndexBytes();
  ASSERT_TRUE(mgr.CreateIndex(IndexDef("t", {"a", "b", "c"})).ok());
  EXPECT_GT(mgr.TotalIndexBytes(), one);
}

TEST_F(IndexManagerTest, UsageCounters) {
  IndexManager mgr(&catalog_);
  ASSERT_TRUE(mgr.CreateIndex(IndexDef("t", {"a"})).ok());
  BuiltIndex* index = mgr.IndexesOnTable("t")[0];
  EXPECT_EQ(index->uses(), 0u);
  index->RecordUse();
  index->RecordUse();
  EXPECT_EQ(index->uses(), 2u);
  index->ResetUses();
  EXPECT_EQ(index->uses(), 0u);
}

TEST_F(IndexManagerTest, CheckAllAfterMutationBatches) {
  IndexManager mgr(&catalog_);
  ASSERT_TRUE(mgr.CreateIndex(IndexDef("t", {"a"})).ok());
  ASSERT_TRUE(mgr.CreateIndex(IndexDef("t", {"b", "c"})).ok());
  EXPECT_TRUE(CheckAll(catalog_, mgr).ok());

  // Mutation batch through the write hooks: inserts, updates, deletes.
  Random rng(7);
  for (int i = 0; i < 200; ++i) {
    auto rid = table_->Insert({Value(int64_t(1000 + i)),
                               Value(int64_t(i % 13)),
                               Value("x" + std::to_string(i % 5))});
    ASSERT_TRUE(rid.ok());
    mgr.OnInsert("t", *rid, table_->Get(*rid));
  }
  for (int i = 0; i < 120; ++i) {
    const RowId rid = rng.Uniform(table_->num_slots());
    if (!table_->IsLive(rid)) continue;
    if (rng.Bernoulli(0.5)) {
      Row old_row = table_->Get(rid);
      Row new_row = old_row;
      new_row[1] = Value(int64_t(rng.Uniform(40)));
      ASSERT_TRUE(table_->Update(rid, new_row).ok());
      mgr.OnUpdate("t", rid, old_row, new_row);
    } else {
      const Row old_row = table_->Get(rid);
      mgr.OnDelete("t", rid, old_row);
      ASSERT_TRUE(table_->Delete(rid).ok());
    }
  }
  CheckReport report = CheckAll(catalog_, mgr);
  EXPECT_TRUE(report.ok()) << report.ToString();

  // Index retirement must leave the remaining accounting exact.
  ASSERT_TRUE(mgr.DropIndex("idx_t_a").ok());
  report = CheckAll(catalog_, mgr);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(IndexSizeModel, EstimatesScaleWithRowsAndWidth) {
  EXPECT_GT(EstimateIndexBytes(1000000, 8), EstimateIndexBytes(1000, 8));
  EXPECT_GT(EstimateIndexBytes(1000, 64), EstimateIndexBytes(1000, 8));
  EXPECT_GE(EstimateIndexHeight(1000000, 8), EstimateIndexHeight(100, 8));
  EXPECT_GE(EstimateIndexHeight(100, 8), 1u);
  EXPECT_GT(LeafCapacityForWidth(8), LeafCapacityForWidth(128));
}

}  // namespace
}  // namespace autoindex
