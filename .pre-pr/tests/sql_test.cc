// Lexer, parser, expression evaluation, and fingerprinting tests.

#include <gtest/gtest.h>

#include <map>

#include "sql/expr.h"
#include "sql/fingerprint.h"
#include "sql/lexer.h"
#include "sql/parser.h"

namespace autoindex {
namespace {

TEST(Lexer, BasicTokens) {
  auto toks = Tokenize("SELECT a, b FROM t WHERE a = 5");
  ASSERT_TRUE(toks.ok());
  ASSERT_GE(toks->size(), 9u);
  EXPECT_EQ((*toks)[0].type, TokenType::kKeyword);
  EXPECT_EQ((*toks)[0].text, "SELECT");
  EXPECT_EQ((*toks)[1].type, TokenType::kIdentifier);
  EXPECT_EQ((*toks)[1].text, "a");
  EXPECT_EQ(toks->back().type, TokenType::kEnd);
}

TEST(Lexer, NormalizesCase) {
  auto toks = Tokenize("select FOO from BAR");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].text, "SELECT");
  EXPECT_EQ((*toks)[1].text, "foo");
  EXPECT_EQ((*toks)[3].text, "bar");
}

TEST(Lexer, NumbersAndStrings) {
  auto toks = Tokenize("x = -3 AND y = 2.75 AND z = 'a''b'");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[2].type, TokenType::kInteger);
  EXPECT_EQ((*toks)[2].text, "-3");
  EXPECT_EQ((*toks)[6].type, TokenType::kFloat);
  EXPECT_EQ((*toks)[10].type, TokenType::kString);
  EXPECT_EQ((*toks)[10].text, "a'b");
}

TEST(Lexer, Operators) {
  auto toks = Tokenize("a <= 1 AND b <> 2 AND c != 3 AND d >= 4");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[1].text, "<=");
  EXPECT_EQ((*toks)[5].text, "<>");
  EXPECT_EQ((*toks)[9].text, "<>");  // != normalizes to <>
  EXPECT_EQ((*toks)[13].text, ">=");
}

TEST(Lexer, RejectsGarbage) {
  EXPECT_FALSE(Tokenize("SELECT #").ok());
  EXPECT_FALSE(Tokenize("SELECT 'unterminated").ok());
}

TEST(Parser, SimpleSelect) {
  auto stmt = ParseSql("SELECT a, b FROM t WHERE a = 1 AND b > 2");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_EQ(stmt->kind, StatementKind::kSelect);
  const SelectStatement& s = *stmt->select;
  ASSERT_EQ(s.from.size(), 1u);
  EXPECT_EQ(s.from[0].table, "t");
  ASSERT_EQ(s.items.size(), 2u);
  EXPECT_EQ(s.items[0].column.column, "a");
  ASSERT_NE(s.where, nullptr);
  EXPECT_EQ(s.where->kind, ExprKind::kAnd);
  EXPECT_EQ(s.where->children.size(), 2u);
}

TEST(Parser, StarAndAggregates) {
  auto stmt =
      ParseSql("SELECT COUNT(*), SUM(x), AVG(y), MIN(z), MAX(w) FROM t");
  ASSERT_TRUE(stmt.ok());
  const SelectStatement& s = *stmt->select;
  ASSERT_EQ(s.items.size(), 5u);
  EXPECT_EQ(s.items[0].agg, AggFunc::kCount);
  EXPECT_TRUE(s.items[0].star);
  EXPECT_EQ(s.items[1].agg, AggFunc::kSum);
  EXPECT_EQ(s.items[1].column.column, "x");
  EXPECT_EQ(s.items[4].agg, AggFunc::kMax);
}

TEST(Parser, GroupOrderLimit) {
  auto stmt = ParseSql(
      "SELECT a, COUNT(*) FROM t GROUP BY a ORDER BY a DESC LIMIT 7");
  ASSERT_TRUE(stmt.ok());
  const SelectStatement& s = *stmt->select;
  ASSERT_EQ(s.group_by.size(), 1u);
  EXPECT_EQ(s.group_by[0].column, "a");
  ASSERT_EQ(s.order_by.size(), 1u);
  EXPECT_TRUE(s.order_by[0].desc);
  EXPECT_EQ(s.limit, 7);
}

TEST(Parser, ImplicitAndExplicitJoin) {
  auto implicit = ParseSql(
      "SELECT t1.a FROM t1, t2 WHERE t1.x = t2.y AND t1.a = 3");
  ASSERT_TRUE(implicit.ok());
  EXPECT_EQ(implicit->select->from.size(), 2u);

  auto join = ParseSql("SELECT a FROM t1 JOIN t2 ON t1.x = t2.y WHERE a = 1");
  ASSERT_TRUE(join.ok());
  EXPECT_EQ(join->select->from.size(), 2u);
  // ON predicate folded into WHERE.
  ASSERT_NE(join->select->where, nullptr);
  EXPECT_EQ(join->select->where->kind, ExprKind::kAnd);
}

TEST(Parser, ChainedJoins) {
  auto stmt = ParseSql(
      "SELECT COUNT(*) FROM a JOIN b ON a.x = b.x JOIN c ON b.y = c.y");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->select->from.size(), 3u);
}

TEST(Parser, TableAliases) {
  auto stmt = ParseSql("SELECT s.a FROM sales AS s WHERE s.a = 1");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->select->from[0].table, "sales");
  EXPECT_EQ(stmt->select->from[0].alias, "s");

  auto implicit_alias = ParseSql("SELECT s.a FROM sales s WHERE s.a = 1");
  ASSERT_TRUE(implicit_alias.ok());
  EXPECT_EQ(implicit_alias->select->from[0].alias, "s");
}

TEST(Parser, BetweenInIsNullLike) {
  auto stmt = ParseSql(
      "SELECT a FROM t WHERE a BETWEEN 1 AND 5 AND b IN (1, 2, 3) AND c IS "
      "NOT NULL AND d LIKE 'x%' AND e NOT IN (9)");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const Expr& w = *stmt->select->where;
  ASSERT_EQ(w.kind, ExprKind::kAnd);
  ASSERT_EQ(w.children.size(), 5u);
  EXPECT_EQ(w.children[0]->kind, ExprKind::kBetween);
  EXPECT_EQ(w.children[1]->kind, ExprKind::kInList);
  EXPECT_EQ(w.children[1]->in_list.size(), 3u);
  EXPECT_EQ(w.children[2]->kind, ExprKind::kIsNull);
  EXPECT_TRUE(w.children[2]->negated);
  EXPECT_EQ(w.children[3]->op, CompareOp::kLike);
  EXPECT_TRUE(w.children[4]->negated);
}

TEST(Parser, OrPrecedenceBelowAnd) {
  auto stmt = ParseSql("SELECT a FROM t WHERE a = 1 AND b = 2 OR c = 3");
  ASSERT_TRUE(stmt.ok());
  // (a=1 AND b=2) OR c=3
  EXPECT_EQ(stmt->select->where->kind, ExprKind::kOr);
}

TEST(Parser, ParenthesesOverridePrecedence) {
  auto stmt = ParseSql("SELECT a FROM t WHERE a = 1 AND (b = 2 OR c = 3)");
  ASSERT_TRUE(stmt.ok());
  const Expr& w = *stmt->select->where;
  ASSERT_EQ(w.kind, ExprKind::kAnd);
  EXPECT_EQ(w.children[1]->kind, ExprKind::kOr);
}

TEST(Parser, InsertForms) {
  auto bare = ParseSql("INSERT INTO t VALUES (1, 'x', 2.5, NULL)");
  ASSERT_TRUE(bare.ok());
  ASSERT_EQ(bare->insert->rows.size(), 1u);
  EXPECT_EQ(bare->insert->rows[0].size(), 4u);
  EXPECT_TRUE(bare->insert->rows[0][3].is_null());

  auto cols = ParseSql("INSERT INTO t (a, b) VALUES (1, 2), (3, 4)");
  ASSERT_TRUE(cols.ok());
  EXPECT_EQ(cols->insert->columns.size(), 2u);
  EXPECT_EQ(cols->insert->rows.size(), 2u);
}

TEST(Parser, UpdateAndDelete) {
  auto upd = ParseSql("UPDATE t SET a = 5, b = 'x' WHERE c = 1");
  ASSERT_TRUE(upd.ok());
  EXPECT_EQ(upd->kind, StatementKind::kUpdate);
  EXPECT_EQ(upd->update->assignments.size(), 2u);
  ASSERT_NE(upd->update->where, nullptr);

  auto del = ParseSql("DELETE FROM t WHERE a = 1");
  ASSERT_TRUE(del.ok());
  EXPECT_EQ(del->kind, StatementKind::kDelete);
}

TEST(Parser, Errors) {
  EXPECT_FALSE(ParseSql("").ok());
  EXPECT_FALSE(ParseSql("SELEC a FROM t").ok());
  EXPECT_FALSE(ParseSql("SELECT a FROM").ok());
  EXPECT_FALSE(ParseSql("SELECT a FROM t WHERE").ok());
  EXPECT_FALSE(ParseSql("INSERT INTO t VALUES (1,)").ok());
  EXPECT_FALSE(ParseSql("SELECT a FROM t extra garbage").ok());
}

TEST(Parser, RoundTripThroughToString) {
  const char* queries[] = {
      "SELECT a, b FROM t WHERE a = 1 AND b > 2 ORDER BY a LIMIT 3",
      "SELECT COUNT(*) FROM t WHERE a BETWEEN 1 AND 5",
      "INSERT INTO t VALUES (1, 'x')",
      "UPDATE t SET a = 2 WHERE b = 3",
      "DELETE FROM t WHERE a IN (1, 2)",
  };
  for (const char* q : queries) {
    auto first = ParseSql(q);
    ASSERT_TRUE(first.ok()) << q;
    auto second = ParseSql(first->ToString());
    ASSERT_TRUE(second.ok()) << first->ToString();
    EXPECT_EQ(first->ToString(), second->ToString());
  }
}

// --- Expression evaluation ---

class MapResolver : public ColumnResolver {
 public:
  explicit MapResolver(std::map<std::string, Value> vals)
      : vals_(std::move(vals)) {}
  bool Resolve(const ColumnRef& col, Value* out) const override {
    auto it = vals_.find(col.column);
    if (it == vals_.end()) return false;
    *out = it->second;
    return true;
  }

 private:
  std::map<std::string, Value> vals_;
};

ExprPtr WhereOf(const std::string& sql) {
  auto stmt = ParseSql("SELECT a FROM t WHERE " + sql);
  EXPECT_TRUE(stmt.ok()) << sql;
  return std::move(stmt->select->where);
}

TEST(ExprEval, Comparisons) {
  MapResolver r({{"a", Value(int64_t(5))}, {"s", Value("abc")}});
  EXPECT_TRUE(EvaluatePredicate(*WhereOf("a = 5"), r));
  EXPECT_FALSE(EvaluatePredicate(*WhereOf("a = 6"), r));
  EXPECT_TRUE(EvaluatePredicate(*WhereOf("a <> 6"), r));
  EXPECT_TRUE(EvaluatePredicate(*WhereOf("a < 6"), r));
  EXPECT_TRUE(EvaluatePredicate(*WhereOf("a >= 5"), r));
  EXPECT_TRUE(EvaluatePredicate(*WhereOf("s = 'abc'"), r));
}

TEST(ExprEval, BooleanStructure) {
  MapResolver r({{"a", Value(int64_t(5))}, {"b", Value(int64_t(2))}});
  EXPECT_TRUE(EvaluatePredicate(*WhereOf("a = 5 AND b = 2"), r));
  EXPECT_FALSE(EvaluatePredicate(*WhereOf("a = 5 AND b = 3"), r));
  EXPECT_TRUE(EvaluatePredicate(*WhereOf("a = 9 OR b = 2"), r));
  EXPECT_TRUE(EvaluatePredicate(*WhereOf("NOT (a = 9)"), r));
  EXPECT_FALSE(EvaluatePredicate(*WhereOf("NOT (a = 5 OR b = 2)"), r));
}

TEST(ExprEval, BetweenInNull) {
  MapResolver r({{"a", Value(int64_t(5))}, {"n", Value()}});
  EXPECT_TRUE(EvaluatePredicate(*WhereOf("a BETWEEN 5 AND 9"), r));
  EXPECT_FALSE(EvaluatePredicate(*WhereOf("a BETWEEN 6 AND 9"), r));
  EXPECT_TRUE(EvaluatePredicate(*WhereOf("a IN (1, 5, 9)"), r));
  EXPECT_FALSE(EvaluatePredicate(*WhereOf("a NOT IN (1, 5)"), r));
  EXPECT_TRUE(EvaluatePredicate(*WhereOf("n IS NULL"), r));
  EXPECT_FALSE(EvaluatePredicate(*WhereOf("n IS NOT NULL"), r));
  // NULL operand in comparison -> false.
  EXPECT_FALSE(EvaluatePredicate(*WhereOf("n = 1"), r));
  EXPECT_FALSE(EvaluatePredicate(*WhereOf("n <> 1"), r));
}

TEST(ExprEval, Like) {
  MapResolver r({{"s", Value("hello world")}});
  EXPECT_TRUE(EvaluatePredicate(*WhereOf("s LIKE 'hello%'"), r));
  EXPECT_TRUE(EvaluatePredicate(*WhereOf("s LIKE '%world'"), r));
  EXPECT_TRUE(EvaluatePredicate(*WhereOf("s LIKE '%lo wo%'"), r));
  EXPECT_TRUE(EvaluatePredicate(*WhereOf("s LIKE 'hello _orld'"), r));
  EXPECT_FALSE(EvaluatePredicate(*WhereOf("s LIKE 'world%'"), r));
  EXPECT_FALSE(EvaluatePredicate(*WhereOf("s NOT LIKE 'hello%'"), r));
}

TEST(ExprEval, CloneAndEquals) {
  ExprPtr e = WhereOf("a = 1 AND (b > 2 OR c IN (3, 4))");
  ExprPtr clone = e->Clone();
  EXPECT_TRUE(e->Equals(*clone));
  clone->children[0]->op = CompareOp::kNe;
  EXPECT_FALSE(e->Equals(*clone));
}

TEST(ExprEval, CollectColumns) {
  ExprPtr e = WhereOf("a = 1 AND t2.b > 2 OR c IS NULL");
  std::vector<ColumnRef> cols;
  e->CollectColumns(&cols);
  ASSERT_EQ(cols.size(), 3u);
  EXPECT_EQ(cols[0].column, "a");
  EXPECT_EQ(cols[1].table, "t2");
  EXPECT_EQ(cols[2].column, "c");
}

// --- Fingerprinting ---

TEST(Fingerprint, LiteralsBecomePlaceholders) {
  EXPECT_EQ(FingerprintSql("SELECT a FROM t WHERE b = 5"),
            FingerprintSql("SELECT a FROM t WHERE b = 99"));
  EXPECT_EQ(FingerprintSql("SELECT a FROM t WHERE s = 'x'"),
            FingerprintSql("SELECT a FROM t WHERE s = 'completely other'"));
}

TEST(Fingerprint, CaseAndWhitespaceInsensitive) {
  EXPECT_EQ(FingerprintSql("select  A from T where B=1"),
            FingerprintSql("SELECT a FROM t WHERE b = 2"));
}

TEST(Fingerprint, DifferentShapesDiffer) {
  EXPECT_NE(FingerprintSql("SELECT a FROM t WHERE b = 1"),
            FingerprintSql("SELECT a FROM t WHERE c = 1"));
  EXPECT_NE(FingerprintSql("SELECT a FROM t WHERE b = 1"),
            FingerprintSql("SELECT a FROM t WHERE b > 1"));
  EXPECT_NE(FingerprintSql("SELECT a FROM t"),
            FingerprintSql("SELECT b FROM t"));
}

TEST(Fingerprint, InListsCollapse) {
  EXPECT_EQ(FingerprintSql("SELECT a FROM t WHERE b IN (1, 2, 3)"),
            FingerprintSql("SELECT a FROM t WHERE b IN (7)"));
}

TEST(Fingerprint, InsertRowsCollapse) {
  EXPECT_EQ(FingerprintSql("INSERT INTO t VALUES (1, 'a', 2.5)"),
            FingerprintSql("INSERT INTO t VALUES (9, 'zzz', 0.1)"));
}

TEST(Fingerprint, HashStable) {
  const uint64_t h1 = FingerprintHash("SELECT a FROM t WHERE b = 5");
  const uint64_t h2 = FingerprintHash("SELECT a FROM t WHERE b = 6");
  const uint64_t h3 = FingerprintHash("SELECT a FROM t WHERE c = 6");
  EXPECT_EQ(h1, h2);
  EXPECT_NE(h1, h3);
}

}  // namespace
}  // namespace autoindex
