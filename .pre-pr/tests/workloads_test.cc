// Workload generators: schema shape, determinism, executability, and the
// characteristics each experiment relies on.

#include <gtest/gtest.h>

#include <set>

#include "sql/fingerprint.h"
#include "workload/banking.h"
#include "workload/epidemic.h"
#include "workload/tpcc.h"
#include "workload/tpcds.h"
#include "workload/workload.h"

namespace autoindex {
namespace {

TEST(Tpcc, PopulatesTenTables) {
  Database db;
  TpccConfig config;
  config.warehouses = 1;
  config.customers_per_district = 50;
  config.items = 200;
  config.orders_per_district = 30;
  TpccWorkload::Populate(&db, config);
  EXPECT_EQ(db.catalog().num_tables(), 9u);
  EXPECT_EQ(db.catalog().GetTable("item")->num_rows(), 200u);
  EXPECT_EQ(db.catalog().GetTable("customer")->num_rows(), 5u * 50u);
  EXPECT_EQ(db.catalog().GetTable("stock")->num_rows(), 200u);
  EXPECT_GT(db.catalog().GetTable("orderline")->num_rows(),
            db.catalog().GetTable("orders")->num_rows());
}

TEST(Tpcc, ScaleGrowsData) {
  Database db1, db10;
  TpccConfig small;
  small.warehouses = 1;
  small.customers_per_district = 20;
  small.items = 100;
  small.orders_per_district = 10;
  TpccConfig large = small;
  large.warehouses = 4;
  TpccWorkload::Populate(&db1, small);
  TpccWorkload::Populate(&db10, large);
  EXPECT_EQ(db10.catalog().GetTable("stock")->num_rows(),
            4 * db1.catalog().GetTable("stock")->num_rows());
}

TEST(Tpcc, GeneratedQueriesAllExecute) {
  Database db;
  TpccConfig config;
  config.warehouses = 1;
  config.customers_per_district = 50;
  config.items = 200;
  config.orders_per_district = 30;
  TpccWorkload::Populate(&db, config);
  TpccWorkload::CreateDefaultIndexes(&db);
  const auto queries = TpccWorkload::Generate(config, 100, 7);
  EXPECT_GT(queries.size(), 100u);  // txns expand to multiple statements
  RunMetrics metrics = RunWorkload(&db, queries);
  EXPECT_EQ(metrics.failed, 0u);
  EXPECT_GT(metrics.total_cost, 0.0);
}

TEST(Tpcc, DeterministicGeneration) {
  TpccConfig config;
  const auto a = TpccWorkload::Generate(config, 50, 42);
  const auto b = TpccWorkload::Generate(config, 50, 42);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  const auto c = TpccWorkload::Generate(config, 50, 43);
  EXPECT_NE(a[0], c[0]);
}

TEST(Tpcc, MixShiftsReadWriteRatio) {
  TpccConfig config;
  const auto writes = TpccWorkload::Generate(config, 300, 1,
                                             TpccWorkload::WriteHeavyMix());
  const auto reads = TpccWorkload::Generate(config, 300, 1,
                                            TpccWorkload::ReadHeavyMix());
  auto count_writes = [](const std::vector<std::string>& qs) {
    size_t n = 0;
    for (const auto& q : qs) {
      if (q.rfind("INSERT", 0) == 0 || q.rfind("UPDATE", 0) == 0 ||
          q.rfind("DELETE", 0) == 0) {
        ++n;
      }
    }
    return n;
  };
  EXPECT_GT(static_cast<double>(count_writes(writes)) / writes.size(),
            static_cast<double>(count_writes(reads)) / reads.size());
}

TEST(Tpcds, PopulatesStarSchema) {
  Database db;
  TpcdsConfig config;
  config.sales_rows = 5000;
  TpcdsWorkload::Populate(&db, config);
  EXPECT_EQ(db.catalog().num_tables(), 6u);
  EXPECT_EQ(db.catalog().GetTable("store_sales")->num_rows(), 5000u);
  EXPECT_EQ(db.catalog().GetTable("ds_item")->num_rows(),
            static_cast<size_t>(config.items));
}

TEST(Tpcds, AllTemplatesParseAndExecute) {
  Database db;
  TpcdsConfig config;
  config.sales_rows = 3000;
  config.items = 500;
  config.customers = 500;
  TpcdsWorkload::Populate(&db, config);
  TpcdsWorkload::CreateDefaultIndexes(&db);
  const auto queries = TpcdsWorkload::OneOfEach(config, 11);
  ASSERT_EQ(queries.size(),
            static_cast<size_t>(TpcdsWorkload::kNumQueryTemplates));
  RunMetrics metrics = RunWorkload(&db, queries);
  EXPECT_EQ(metrics.failed, 0u) << "some TPC-DS template failed to execute";
}

TEST(Tpcds, TemplatesHaveDistinctFingerprints) {
  TpcdsConfig config;
  Random rng(3);
  std::set<std::string> fps;
  for (int q = 0; q < TpcdsWorkload::kNumQueryTemplates; ++q) {
    fps.insert(FingerprintSql(TpcdsWorkload::Query(q, config, &rng)));
  }
  EXPECT_EQ(fps.size(),
            static_cast<size_t>(TpcdsWorkload::kNumQueryTemplates));
}

TEST(Banking, PopulatesManyTables) {
  Database db;
  BankingConfig config;
  config.num_tables = 30;
  config.hot_tables = 6;
  config.rows_hot = 500;
  config.rows_cold = 50;
  BankingWorkload::Populate(&db, config);
  EXPECT_EQ(db.catalog().num_tables(), 30u);
  EXPECT_EQ(db.catalog().GetTable(BankingWorkload::TableName(0))->num_rows(),
            500u);
  EXPECT_EQ(db.catalog().GetTable(BankingWorkload::TableName(29))->num_rows(),
            50u);
}

TEST(Banking, ManualIndexEstateIsLargeAndRedundant) {
  BankingConfig config;
  const auto defs = BankingWorkload::ManualIndexes(config);
  EXPECT_GT(defs.size(), 200u);
  // Contains at least one prefix-redundant pair.
  bool redundant = false;
  for (const IndexDef& a : defs) {
    for (const IndexDef& b : defs) {
      if (!(a == b) && a.IsPrefixOf(b)) {
        redundant = true;
        break;
      }
    }
    if (redundant) break;
  }
  EXPECT_TRUE(redundant);
}

TEST(Banking, ServicesExecute) {
  Database db;
  BankingConfig config;
  config.num_tables = 20;
  config.hot_tables = 6;
  config.rows_hot = 400;
  config.rows_cold = 40;
  BankingWorkload::Populate(&db, config);
  const auto withdraw = BankingWorkload::WithdrawalService(config, 50, 1);
  const auto summarize = BankingWorkload::SummarizationService(config, 50, 2);
  const auto hybrid = BankingWorkload::HybridService(config, 60, 3);
  EXPECT_EQ(RunWorkload(&db, withdraw).failed, 0u);
  EXPECT_EQ(RunWorkload(&db, summarize).failed, 0u);
  EXPECT_EQ(RunWorkload(&db, hybrid).failed, 0u);
  EXPECT_EQ(hybrid.size(), 60u);
}

TEST(Epidemic, PhasesHaveExpectedShape) {
  EpidemicConfig config;
  const auto w1 = EpidemicWorkload::PhaseW1(config, 100, 1);
  const auto w2 = EpidemicWorkload::PhaseW2(config, 100, 2);
  const auto w3 = EpidemicWorkload::PhaseW3(config, 100, 3);
  auto frac_prefix = [](const std::vector<std::string>& qs,
                        const char* prefix) {
    size_t n = 0;
    for (const auto& q : qs) {
      if (q.rfind(prefix, 0) == 0) ++n;
    }
    return static_cast<double>(n) / qs.size();
  };
  EXPECT_DOUBLE_EQ(frac_prefix(w1, "SELECT"), 1.0);
  EXPECT_GT(frac_prefix(w2, "INSERT"), 0.6);
  EXPECT_GT(frac_prefix(w3, "UPDATE"), 0.4);
}

TEST(Epidemic, AllPhasesExecute) {
  Database db;
  EpidemicConfig config;
  config.people = 2000;
  EpidemicWorkload::Populate(&db, config);
  EXPECT_EQ(RunWorkload(&db, EpidemicWorkload::PhaseW1(config, 40, 1)).failed,
            0u);
  EXPECT_EQ(RunWorkload(&db, EpidemicWorkload::PhaseW2(config, 40, 2)).failed,
            0u);
  EXPECT_EQ(RunWorkload(&db, EpidemicWorkload::PhaseW3(config, 40, 3)).failed,
            0u);
}

TEST(Runner, MetricsAreConsistent) {
  Database db;
  db.CreateTable("t", Schema({{"a", ValueType::kInt}}));
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        db.Execute("INSERT INTO t VALUES (" + std::to_string(i) + ")").ok());
  }
  std::vector<double> per_query;
  RunMetrics m = RunWorkload(
      &db, {"SELECT COUNT(*) FROM t", "SELECT a FROM t WHERE a = 5"},
      &per_query);
  EXPECT_EQ(m.queries, 2u);
  EXPECT_EQ(m.failed, 0u);
  ASSERT_EQ(per_query.size(), 2u);
  EXPECT_NEAR(per_query[0] + per_query[1], m.total_cost, 1e-9);
  EXPECT_GT(m.Throughput(), 0.0);
  EXPECT_GT(m.AvgLatency(), 0.0);
}

TEST(Runner, FailedQueriesCounted) {
  Database db;
  db.CreateTable("t", Schema({{"a", ValueType::kInt}}));
  RunMetrics m = RunWorkload(&db, {"SELECT a FROM missing_table"});
  EXPECT_EQ(m.failed, 1u);
}

}  // namespace
}  // namespace autoindex
