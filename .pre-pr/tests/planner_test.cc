// Planner unit tests: condition extraction, access-path choice, join
// ordering.

#include <gtest/gtest.h>

#include "engine/planner.h"
#include "sql/parser.h"
#include "storage/catalog.h"

namespace autoindex {
namespace {

class PlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto big = catalog_.CreateTable("big", Schema({{"a", ValueType::kInt},
                                                   {"b", ValueType::kInt},
                                                   {"c", ValueType::kInt}}));
    ASSERT_TRUE(big.ok());
    for (int i = 0; i < 50000; ++i) {
      ASSERT_TRUE((*big)
                      ->Insert({Value(int64_t(i)), Value(int64_t(i % 500)),
                                Value(int64_t(i % 5))})
                      .ok());
    }
    auto small = catalog_.CreateTable(
        "small", Schema({{"k", ValueType::kInt}, {"v", ValueType::kInt}}));
    ASSERT_TRUE(small.ok());
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(
          (*small)->Insert({Value(int64_t(i)), Value(int64_t(i))}).ok());
    }
    stats_ = std::make_unique<StatsManager>(&catalog_);
    planner_ = std::make_unique<Planner>(&catalog_, stats_.get(), params_);
  }

  SelectStatement& Select(const std::string& sql) {
    stmt_ = std::make_unique<Statement>();
    auto parsed = ParseSql(sql);
    EXPECT_TRUE(parsed.ok()) << sql;
    *stmt_ = std::move(*parsed);
    return *stmt_->select;
  }

  IndexStatsView View(const IndexDef& def, size_t entries) {
    IndexStatsView v;
    v.def = def;
    v.num_entries = entries;
    v.height = EstimateIndexHeight(entries, 8 * def.columns.size());
    v.size_bytes = EstimateIndexBytes(entries, 8 * def.columns.size());
    return v;
  }

  Catalog catalog_;
  CostParams params_;
  std::unique_ptr<StatsManager> stats_;
  std::unique_ptr<Planner> planner_;
  std::unique_ptr<Statement> stmt_;
};

TEST_F(PlannerTest, ExtractsLiteralConditions) {
  SelectStatement& s =
      Select("SELECT a FROM big WHERE a = 5 AND b > 10 AND c <= 3");
  auto conds = planner_->ExtractConditions(s.where.get(), "big", "big", {});
  ASSERT_EQ(conds.size(), 3u);
  EXPECT_EQ(conds[0].kind, ColumnCondition::kEq);
  EXPECT_EQ(conds[1].kind, ColumnCondition::kRangeLo);
  EXPECT_FALSE(conds[1].inclusive);
  EXPECT_EQ(conds[2].kind, ColumnCondition::kRangeHi);
  EXPECT_TRUE(conds[2].inclusive);
}

TEST_F(PlannerTest, SwappedLiteralNormalized) {
  SelectStatement& s = Select("SELECT a FROM big WHERE 5 = a AND 10 < b");
  auto conds = planner_->ExtractConditions(s.where.get(), "big", "big", {});
  ASSERT_EQ(conds.size(), 2u);
  EXPECT_EQ(conds[0].kind, ColumnCondition::kEq);
  EXPECT_EQ(conds[1].kind, ColumnCondition::kRangeLo);
}

TEST_F(PlannerTest, BetweenSplitsIntoTwoRanges) {
  SelectStatement& s = Select("SELECT a FROM big WHERE b BETWEEN 3 AND 9");
  auto conds = planner_->ExtractConditions(s.where.get(), "big", "big", {});
  ASSERT_EQ(conds.size(), 2u);
  EXPECT_EQ(conds[0].kind, ColumnCondition::kRangeLo);
  EXPECT_EQ(conds[1].kind, ColumnCondition::kRangeHi);
}

TEST_F(PlannerTest, JoinConditionRecognized) {
  SelectStatement& s = Select(
      "SELECT big.a FROM small, big WHERE big.b = small.k AND big.c = 1");
  auto conds = planner_->ExtractConditions(s.where.get(), "big", "big",
                                           {TableRef("small")});
  ASSERT_EQ(conds.size(), 2u);
  bool has_join = false;
  for (const auto& c : conds) {
    if (c.join_source.has_value()) {
      has_join = true;
      EXPECT_EQ(c.column, "b");
      EXPECT_EQ(c.join_source->table, "small");
    }
  }
  EXPECT_TRUE(has_join);
}

TEST_F(PlannerTest, UnqualifiedJoinColumnsRecognized) {
  // Regression: TPC-DS-style queries use unqualified join columns
  // (ss_item_sk = i_item_sk); these must still become join conditions, or
  // joins silently degrade to cartesian products.
  SelectStatement& s = Select(
      "SELECT a FROM small, big WHERE b = k AND c = 1");
  auto conds = planner_->ExtractConditions(s.where.get(), "big", "big",
                                           {TableRef("small")});
  bool has_join = false;
  for (const auto& c : conds) {
    if (c.join_source.has_value()) {
      has_join = true;
      EXPECT_EQ(c.column, "b");
      EXPECT_EQ(c.join_source->column, "k");
    }
  }
  EXPECT_TRUE(has_join);
}

TEST_F(PlannerTest, TopLevelOrYieldsNoSargableConditions) {
  SelectStatement& s = Select("SELECT a FROM big WHERE a = 1 OR b = 2");
  auto conds = planner_->ExtractConditions(s.where.get(), "big", "big", {});
  EXPECT_TRUE(conds.empty());
}

TEST_F(PlannerTest, ChoosesSelectiveIndexOverSeqScan) {
  SelectStatement& s = Select("SELECT b FROM big WHERE a = 77");
  auto conds = planner_->ExtractConditions(s.where.get(), "big", "big", {});
  auto decision = planner_->ChooseAccessPath(
      "big", "big", conds, {View(IndexDef("big", {"a"}), 50000)});
  EXPECT_TRUE(decision.use_index);
  EXPECT_EQ(decision.eq_prefix_len, 1u);
  EXPECT_LT(decision.est_match_rows, 5.0);
}

TEST_F(PlannerTest, RejectsUnusableIndex) {
  SelectStatement& s = Select("SELECT b FROM big WHERE a = 77");
  auto conds = planner_->ExtractConditions(s.where.get(), "big", "big", {});
  // Index on (b) cannot serve an a-predicate.
  auto decision = planner_->ChooseAccessPath(
      "big", "big", conds, {View(IndexDef("big", {"b"}), 50000)});
  EXPECT_FALSE(decision.use_index);
}

TEST_F(PlannerTest, PrefersLongerPrefixMatch) {
  SelectStatement& s = Select("SELECT c FROM big WHERE a = 7 AND b = 100");
  auto conds = planner_->ExtractConditions(s.where.get(), "big", "big", {});
  auto decision = planner_->ChooseAccessPath(
      "big", "big", conds,
      {View(IndexDef("big", {"b"}), 50000),
       View(IndexDef("big", {"a", "b"}), 50000)});
  ASSERT_TRUE(decision.use_index);
  EXPECT_EQ(decision.index.columns.size(), 2u);
  EXPECT_EQ(decision.eq_prefix_len, 2u);
}

TEST_F(PlannerTest, RangeAfterEqualityPrefix) {
  SelectStatement& s =
      Select("SELECT c FROM big WHERE b = 100 AND a > 49900");
  auto conds = planner_->ExtractConditions(s.where.get(), "big", "big", {});
  auto decision = planner_->ChooseAccessPath(
      "big", "big", conds, {View(IndexDef("big", {"b", "a"}), 50000)});
  ASSERT_TRUE(decision.use_index);
  EXPECT_EQ(decision.eq_prefix_len, 1u);
  EXPECT_TRUE(decision.has_range);
}

TEST_F(PlannerTest, WeakPredicatePrefersSeqScan) {
  SelectStatement& s = Select("SELECT a FROM big WHERE c = 2");
  auto conds = planner_->ExtractConditions(s.where.get(), "big", "big", {});
  // c has 5 distinct values: 20% of a 50k-row table; random heap fetches
  // would dominate.
  auto decision = planner_->ChooseAccessPath(
      "big", "big", conds, {View(IndexDef("big", {"c"}), 50000)});
  EXPECT_FALSE(decision.use_index);
}

TEST_F(PlannerTest, PlanSelectOrdersSmallTableFirst) {
  SelectStatement& s = Select(
      "SELECT big.a FROM big, small WHERE big.b = small.k AND small.v = 3");
  auto plan = planner_->PlanSelect(s, {});
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->tables.size(), 2u);
  EXPECT_EQ(plan->tables[0].ref.table, "small");
  EXPECT_EQ(plan->tables[1].ref.table, "big");
}

TEST_F(PlannerTest, PlanSelectFailsOnUnknownTable) {
  SelectStatement& s = Select("SELECT a FROM nope");
  EXPECT_FALSE(planner_->PlanSelect(s, {}).ok());
}

TEST_F(PlannerTest, WriteLookupPlansIndexAccess) {
  auto parsed = ParseSql("UPDATE big SET c = 1 WHERE a = 5");
  ASSERT_TRUE(parsed.ok());
  auto tp = planner_->PlanWriteLookup(
      "big", parsed->update->where.get(),
      {View(IndexDef("big", {"a"}), 50000)});
  ASSERT_TRUE(tp.ok());
  EXPECT_TRUE(tp->access.use_index);
}

TEST_F(PlannerTest, ResolveColumnTableHandlesQualifiersAndProbing) {
  std::vector<TableRef> from{TableRef("big"), TableRef("small", "s")};
  EXPECT_EQ(ResolveColumnTable(ColumnRef("big", "a"), from, catalog_), 0);
  EXPECT_EQ(ResolveColumnTable(ColumnRef("s", "k"), from, catalog_), 1);
  EXPECT_EQ(ResolveColumnTable(ColumnRef("k"), from, catalog_), 1);
  EXPECT_EQ(ResolveColumnTable(ColumnRef("a"), from, catalog_), 0);
  EXPECT_EQ(ResolveColumnTable(ColumnRef("zzz"), from, catalog_), -1);
  EXPECT_EQ(ResolveColumnTable(ColumnRef("nope", "a"), from, catalog_), -1);
}

}  // namespace
}  // namespace autoindex
