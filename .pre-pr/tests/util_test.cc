#include <gtest/gtest.h>

#include <set>

#include "util/random.h"
#include "util/status.h"
#include "util/string_util.h"

namespace autoindex {
namespace {

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOr, HoldsError) {
  StatusOr<int> v(Status::InvalidArgument("bad"));
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument);
}

TEST(StatusOr, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v(std::make_unique<int>(7));
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> p = std::move(v).value();
  EXPECT_EQ(*p, 7);
}

TEST(Random, Deterministic) {
  Random a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Random, DifferentSeedsDiverge) {
  Random a(1), b(2);
  int diff = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.Next() != b.Next()) ++diff;
  }
  EXPECT_GT(diff, 30);
}

TEST(Random, UniformInRange) {
  Random r(7);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = r.Uniform(10);
    EXPECT_LT(v, 10u);
  }
}

TEST(Random, UniformIntInclusiveBounds) {
  Random r(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = r.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Random, NextDoubleInUnitInterval) {
  Random r(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Random, SkewedPrefersSmallValues) {
  Random r(13);
  size_t low = 0;
  const size_t n = 10000;
  for (size_t i = 0; i < n; ++i) {
    if (r.Skewed(1000) < 100) ++low;
  }
  // Zipf-ish: the first decile gets far more than 10% of the mass.
  EXPECT_GT(low, n / 5);
}

TEST(Random, BernoulliExtremes) {
  Random r(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.Bernoulli(0.0));
    EXPECT_TRUE(r.Bernoulli(1.0));
  }
}

TEST(StringUtil, ToLowerUpper) {
  EXPECT_EQ(ToLower("AbC_9"), "abc_9");
  EXPECT_EQ(ToUpper("AbC_9"), "ABC_9");
  EXPECT_EQ(ToLower(""), "");
}

TEST(StringUtil, Join) {
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"a"}, ", "), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, "-"), "a-b-c");
}

TEST(StringUtil, Split) {
  EXPECT_EQ(Split("a,b,c", ',').size(), 3u);
  EXPECT_EQ(Split(",,a,", ',').size(), 1u);
  EXPECT_TRUE(Split("", ',').empty());
}

TEST(StringUtil, Trim) {
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringUtil, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.5), "1.50");
}

}  // namespace
}  // namespace autoindex
