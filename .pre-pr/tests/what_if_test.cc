// What-if cost model: pricing configurations without building indexes, and
// agreement in *direction* with measured execution costs.

#include <gtest/gtest.h>

#include "engine/database.h"
#include "sql/parser.h"

namespace autoindex {
namespace {

class WhatIfTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_.CreateTable("t", Schema({{"a", ValueType::kInt},
                                 {"b", ValueType::kInt},
                                 {"c", ValueType::kDouble}}));
    std::vector<Row> rows;
    for (int i = 0; i < 30000; ++i) {
      rows.push_back({Value(int64_t(i)), Value(int64_t(i % 50)),
                      Value(i * 0.5)});
    }
    ASSERT_TRUE(db_.BulkInsert("t", std::move(rows)).ok());
    db_.Analyze();
  }

  Statement Parse(const std::string& sql) {
    auto stmt = ParseSql(sql);
    EXPECT_TRUE(stmt.ok()) << sql;
    return std::move(*stmt);
  }

  Database db_;
};

TEST_F(WhatIfTest, ConfigOperations) {
  IndexConfig config;
  const IndexDef a("t", {"a"});
  const IndexDef b("t", {"b"});
  EXPECT_FALSE(config.Contains(a));
  config.Add(a);
  config.Add(a);  // idempotent
  EXPECT_EQ(config.defs().size(), 1u);
  config.Add(b);
  config.Remove(a);
  EXPECT_FALSE(config.Contains(a));
  EXPECT_TRUE(config.Contains(b));
}

TEST_F(WhatIfTest, StatsViewsEstimateFromTable) {
  IndexConfig config({IndexDef("t", {"a"})});
  auto views = config.ToStatsViews(db_.catalog());
  ASSERT_EQ(views.size(), 1u);
  EXPECT_EQ(views[0].num_entries, 30000u);
  EXPECT_GE(views[0].height, 2u);
  EXPECT_GT(views[0].size_bytes, kPageSizeBytes);
}

TEST_F(WhatIfTest, IndexLowersEstimatedPointQueryCost) {
  const Statement q = Parse("SELECT c FROM t WHERE a = 12345");
  const double without =
      db_.WhatIfCost(q, IndexConfig()).Total();
  const double with =
      db_.WhatIfCost(q, IndexConfig({IndexDef("t", {"a"})})).Total();
  EXPECT_LT(with, without / 5.0);
}

TEST_F(WhatIfTest, UselessIndexDoesNotHelpReads) {
  const Statement q = Parse("SELECT c FROM t WHERE a = 12345");
  const double without = db_.WhatIfCost(q, IndexConfig()).Total();
  const double with_b =
      db_.WhatIfCost(q, IndexConfig({IndexDef("t", {"b"})})).Total();
  EXPECT_NEAR(with_b, without, without * 0.05);
}

TEST_F(WhatIfTest, WritesChargeMaintenancePerCoveringIndex) {
  const Statement ins = Parse("INSERT INTO t VALUES (99999, 1, 2.0)");
  const CostBreakdown none = db_.WhatIfCost(ins, IndexConfig());
  const CostBreakdown one =
      db_.WhatIfCost(ins, IndexConfig({IndexDef("t", {"a"})}));
  const CostBreakdown two = db_.WhatIfCost(
      ins, IndexConfig({IndexDef("t", {"a"}), IndexDef("t", {"b"})}));
  EXPECT_GT(one.maint_cpu, none.maint_cpu);
  EXPECT_GT(two.maint_cpu, one.maint_cpu);
  EXPECT_GT(two.maint_io, one.maint_io);
}

TEST_F(WhatIfTest, UpdateOnlyChargesIndexesOnAssignedColumns) {
  const Statement upd = Parse("UPDATE t SET c = 1.5 WHERE a = 77");
  const IndexConfig config(
      {IndexDef("t", {"a"}), IndexDef("t", {"b"})});
  const CostBreakdown cost = db_.WhatIfCost(upd, config);
  // c is not indexed: no index key maintenance at all.
  EXPECT_DOUBLE_EQ(cost.maint_cpu, 0.0);

  const Statement upd_b = Parse("UPDATE t SET b = 9 WHERE a = 77");
  const CostBreakdown cost_b = db_.WhatIfCost(upd_b, config);
  EXPECT_GT(cost_b.maint_cpu, 0.0);
}

TEST_F(WhatIfTest, DeleteChargesNoIndexMaintenance) {
  const Statement del = Parse("DELETE FROM t WHERE a = 123");
  const IndexConfig config({IndexDef("t", {"a"}), IndexDef("t", {"b"})});
  const CostBreakdown cost = db_.WhatIfCost(del, config);
  EXPECT_DOUBLE_EQ(cost.maint_cpu, 0.0);
}

TEST_F(WhatIfTest, DirectionAgreesWithMeasurement) {
  // The what-if model and the executor must agree on which configuration
  // is better, even if absolute numbers differ.
  const Statement q = Parse("SELECT c FROM t WHERE a = 4242");
  const double est_without = db_.WhatIfCost(q, IndexConfig()).Total();
  auto measured_without = db_.Execute("SELECT c FROM t WHERE a = 4242");
  ASSERT_TRUE(measured_without.ok());

  ASSERT_TRUE(db_.CreateIndex(IndexDef("t", {"a"})).ok());
  const double est_with = db_.WhatIfCost(q, db_.CurrentConfig()).Total();
  auto measured_with = db_.Execute("SELECT c FROM t WHERE a = 4242");
  ASSERT_TRUE(measured_with.ok());

  const double m_without =
      measured_without->stats.ToCost(db_.params()).Total();
  const double m_with = measured_with->stats.ToCost(db_.params()).Total();
  EXPECT_LT(est_with, est_without);
  EXPECT_LT(m_with, m_without);
}

TEST_F(WhatIfTest, TotalBytesGrowsWithConfig) {
  IndexConfig small({IndexDef("t", {"a"})});
  IndexConfig large(
      {IndexDef("t", {"a"}), IndexDef("t", {"b"}), IndexDef("t", {"a", "b"})});
  EXPECT_GT(large.TotalBytes(db_.catalog()), small.TotalBytes(db_.catalog()));
}

TEST_F(WhatIfTest, CurrentConfigTracksBuiltIndexes) {
  EXPECT_TRUE(db_.CurrentConfig().defs().empty());
  ASSERT_TRUE(db_.CreateIndex(IndexDef("t", {"a"})).ok());
  EXPECT_EQ(db_.CurrentConfig().defs().size(), 1u);
  ASSERT_TRUE(db_.DropIndex("t(a)").ok());
  EXPECT_TRUE(db_.CurrentConfig().defs().empty());
}

TEST_F(WhatIfTest, JoinEstimatePrefersIndexedInner) {
  db_.CreateTable("d", Schema({{"k", ValueType::kInt},
                               {"v", ValueType::kInt}}));
  std::vector<Row> rows;
  for (int i = 0; i < 5000; ++i) {
    rows.push_back({Value(int64_t(i)), Value(int64_t(i))});
  }
  ASSERT_TRUE(db_.BulkInsert("d", std::move(rows)).ok());
  db_.Analyze();
  const Statement q =
      Parse("SELECT COUNT(*) FROM t, d WHERE t.b = d.k AND t.a = 5");
  const double without = db_.WhatIfCost(q, IndexConfig()).Total();
  const double with = db_.WhatIfCost(
      q, IndexConfig({IndexDef("t", {"a"}), IndexDef("d", {"k"})})).Total();
  EXPECT_LT(with, without);
}

}  // namespace
}  // namespace autoindex
