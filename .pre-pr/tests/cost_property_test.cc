// Cost-model property tests: monotonicity and sanity invariants the
// estimator must satisfy regardless of parameters.

#include <gtest/gtest.h>

#include <cmath>

#include "engine/database.h"
#include "sql/parser.h"
#include "util/random.h"
#include "util/string_util.h"

namespace autoindex {
namespace {

class CostPropertyTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    db_.CreateTable("t", Schema({{"a", ValueType::kInt},
                                 {"b", ValueType::kInt},
                                 {"c", ValueType::kInt}}));
    Random rng(GetParam() * 31 + 7);
    std::vector<Row> rows;
    const int n = 10000 + static_cast<int>(rng.Uniform(30000));
    for (int i = 0; i < n; ++i) {
      rows.push_back({Value(int64_t(i)),
                      Value(rng.UniformInt(0, 500)),
                      Value(rng.UniformInt(0, 20))});
    }
    ASSERT_TRUE(db_.BulkInsert("t", std::move(rows)).ok());
    db_.Analyze();
  }

  Statement Parse(const std::string& sql) {
    auto stmt = ParseSql(sql);
    EXPECT_TRUE(stmt.ok()) << sql;
    return std::move(*stmt);
  }

  Database db_;
};

TEST_P(CostPropertyTest, NarrowerRangeNeverCostsMore) {
  // Under any config, shrinking a range predicate cannot raise the
  // estimated cost.
  const IndexConfig configs[] = {
      IndexConfig(), IndexConfig({IndexDef("t", {"a"})}),
      IndexConfig({IndexDef("t", {"b", "a"})})};
  Random rng(GetParam());
  for (const IndexConfig& config : configs) {
    const int lo = static_cast<int>(rng.Uniform(5000));
    const int wide = lo + 5000;
    const int narrow = lo + 100;
    const double wide_cost = db_.WhatIfCost(
        Parse(StrFormat("SELECT b FROM t WHERE a BETWEEN %d AND %d", lo,
                        wide)),
        config).Total();
    const double narrow_cost = db_.WhatIfCost(
        Parse(StrFormat("SELECT b FROM t WHERE a BETWEEN %d AND %d", lo,
                        narrow)),
        config).Total();
    EXPECT_LE(narrow_cost, wide_cost * 1.0001);
  }
}

TEST_P(CostPropertyTest, MoreIndexesNeverRaiseReadEstimate) {
  // Adding an index can only give the planner more options: the estimated
  // read cost must be monotonically non-increasing in the config.
  const Statement q =
      Parse("SELECT c FROM t WHERE a = 123 AND b = 7");
  IndexConfig config;
  double prev = db_.WhatIfCost(q, config).Total();
  const IndexDef ladder[] = {IndexDef("t", {"c"}), IndexDef("t", {"b"}),
                             IndexDef("t", {"a"}),
                             IndexDef("t", {"a", "b"})};
  for (const IndexDef& def : ladder) {
    config.Add(def);
    const double cost = db_.WhatIfCost(q, config).Total();
    EXPECT_LE(cost, prev * 1.0001) << def.DisplayName();
    prev = cost;
  }
}

TEST_P(CostPropertyTest, MoreIndexesNeverLowerWriteMaintenance) {
  const Statement ins = Parse("INSERT INTO t VALUES (1, 2, 3)");
  IndexConfig config;
  double prev = db_.WhatIfCost(ins, config).Total();
  const IndexDef ladder[] = {IndexDef("t", {"a"}), IndexDef("t", {"b"}),
                             IndexDef("t", {"a", "b", "c"})};
  for (const IndexDef& def : ladder) {
    config.Add(def);
    const double cost = db_.WhatIfCost(ins, config).Total();
    EXPECT_GE(cost, prev * 0.9999) << def.DisplayName();
    prev = cost;
  }
}

TEST_P(CostPropertyTest, EstimatesAreFiniteAndNonNegative) {
  Random rng(GetParam() * 7);
  const IndexConfig config({IndexDef("t", {"a"}), IndexDef("t", {"b"})});
  for (int i = 0; i < 50; ++i) {
    const int v = static_cast<int>(rng.Uniform(40000));
    // Prefix/suffix pairs rather than format strings: an indexed format
    // would be non-literal, which -Wformat=2 rightly rejects.
    const std::pair<const char*, const char*> shapes[] = {
        {"SELECT b FROM t WHERE a = ", ""},
        {"SELECT COUNT(*) FROM t WHERE b > ", ""},
        {"UPDATE t SET c = 1 WHERE a = ", ""},
        {"DELETE FROM t WHERE b = ", ""},
        {"SELECT b, COUNT(*) FROM t WHERE a < ", " GROUP BY b"},
    };
    const Statement q =
        Parse(StrCat(shapes[i % 5].first, v, shapes[i % 5].second));
    const CostBreakdown cost = db_.WhatIfCost(q, config);
    EXPECT_TRUE(std::isfinite(cost.Total()));
    EXPECT_GE(cost.data_io, 0.0);
    EXPECT_GE(cost.data_cpu, 0.0);
    EXPECT_GE(cost.maint_io, 0.0);
    EXPECT_GE(cost.maint_cpu, 0.0);
  }
}

TEST_P(CostPropertyTest, MeasuredAndEstimatedAgreeOnIndexDirection) {
  // For a selective point query, both the estimate and the measurement
  // must agree that the index config is cheaper.
  Random rng(GetParam() * 13 + 1);
  const int v = static_cast<int>(rng.Uniform(10000));
  const std::string sql = StrFormat("SELECT b FROM t WHERE a = %d", v);
  const Statement q = Parse(sql);

  const double est_before = db_.WhatIfCost(q, IndexConfig()).Total();
  auto run_before = db_.Execute(sql);
  ASSERT_TRUE(run_before.ok());

  ASSERT_TRUE(db_.CreateIndex(IndexDef("t", {"a"})).ok());
  const double est_after = db_.WhatIfCost(q, db_.CurrentConfig()).Total();
  auto run_after = db_.Execute(sql);
  ASSERT_TRUE(run_after.ok());

  EXPECT_LT(est_after, est_before);
  EXPECT_LT(run_after->stats.ToCost(db_.params()).Total(),
            run_before->stats.ToCost(db_.params()).Total());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CostPropertyTest, ::testing::Range(1, 7));

}  // namespace
}  // namespace autoindex
