// Parser robustness: random token soups and mutated valid queries must
// never crash or hang — only parse or return a clean error status.

#include <gtest/gtest.h>

#include <cstdint>
#include <iostream>

#include "sql/fingerprint.h"
#include "sql/parser.h"
#include "util/random.h"

namespace autoindex {
namespace {

const char* kFragments[] = {
    "SELECT", "FROM",   "WHERE", "AND",   "OR",    "NOT",   "INSERT",
    "INTO",   "VALUES", "UPDATE", "SET",  "DELETE", "GROUP", "BY",
    "ORDER",  "LIMIT",  "JOIN",  "ON",    "BETWEEN", "IN",  "IS",
    "NULL",   "LIKE",   "COUNT", "(",     ")",      ",",    ".",
    "*",      "=",      "<",     ">",     "<=",     ">=",   "<>",
    "tbl",    "col_a",  "col_b", "alias", "42",     "3.14", "'text'",
    "''",     "-7",     ";",
};

// Sanitizer builds trade raw speed for instrumentation, which is exactly
// when deeper fuzzing pays off: crank the trial count so ASan/UBSan see a
// much larger input space.
#ifdef AUTOINDEX_SANITIZE_BUILD
constexpr int kTrialsPerSeed = 10000;
#else
constexpr int kTrialsPerSeed = 2000;
#endif

class ParserFuzz : public ::testing::TestWithParam<int> {
 protected:
  // Seeds are pure functions of the test parameter — every run is
  // reproducible. Print the derived seed so a failure message alone is
  // enough to replay the exact trial stream.
  static Random SeededRng(uint64_t seed) {
    std::cout << "[fuzz] seed=" << seed << " trials=" << kTrialsPerSeed
              << "\n";
    return Random(seed);
  }
};

TEST_P(ParserFuzz, RandomTokenSoupNeverCrashes) {
  Random rng = SeededRng(GetParam() * 7919 + 3);
  for (int trial = 0; trial < kTrialsPerSeed; ++trial) {
    std::string sql;
    const int len = 1 + static_cast<int>(rng.Uniform(25));
    for (int i = 0; i < len; ++i) {
      sql += kFragments[rng.Uniform(sizeof(kFragments) /
                                    sizeof(kFragments[0]))];
      sql += " ";
    }
    // Must terminate and either succeed or produce a clean error.
    auto result = ParseSql(sql);
    if (!result.ok()) {
      EXPECT_FALSE(result.status().ok());
    }
    // Fingerprinting must also be total.
    FingerprintSql(sql);
  }
}

TEST_P(ParserFuzz, MutatedValidQueriesNeverCrash) {
  Random rng = SeededRng(GetParam() * 104729 + 1);
  const std::string base =
      "SELECT a, COUNT(*) FROM t1 JOIN t2 ON t1.x = t2.y WHERE a = 5 AND "
      "(b > 3 OR c IN (1, 2)) GROUP BY a ORDER BY a DESC LIMIT 10";
  for (int trial = 0; trial < kTrialsPerSeed; ++trial) {
    std::string sql = base;
    // Random single-character mutations: deletions, swaps, injections.
    const int edits = 1 + static_cast<int>(rng.Uniform(6));
    for (int e = 0; e < edits && !sql.empty(); ++e) {
      const size_t pos = rng.Uniform(sql.size());
      switch (rng.Uniform(3)) {
        case 0:
          sql.erase(pos, 1);
          break;
        case 1:
          sql[pos] = static_cast<char>(32 + rng.Uniform(95));
          break;
        default:
          sql.insert(pos, 1, static_cast<char>(32 + rng.Uniform(95)));
          break;
      }
    }
    ParseSql(sql);        // must not crash
    FingerprintSql(sql);  // must not crash
  }
}

TEST(ParserFuzzEdge, PathologicalInputs) {
  // Deep nesting must not blow the stack (parser recursion is bounded by
  // input length; keep it large but sane).
  std::string deep = "SELECT a FROM t WHERE ";
  for (int i = 0; i < 200; ++i) deep += "(";
  deep += "a = 1";
  for (int i = 0; i < 200; ++i) deep += ")";
  EXPECT_TRUE(ParseSql(deep).ok());

  EXPECT_FALSE(ParseSql(std::string(10000, '(')).ok());
  EXPECT_FALSE(ParseSql(std::string(10000, ' ')).ok());
  EXPECT_FALSE(ParseSql("SELECT " + std::string(5000, 'a') + " FROM").ok());
  // A very long IN list parses fine.
  std::string in_list = "SELECT a FROM t WHERE b IN (0";
  for (int i = 1; i < 2000; ++i) in_list += ", " + std::to_string(i);
  in_list += ")";
  EXPECT_TRUE(ParseSql(in_list).ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Range(1, 5));

}  // namespace
}  // namespace autoindex
