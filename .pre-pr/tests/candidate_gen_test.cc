// Candidate index generation (Sec. IV-A): clause extraction, DNF-driven
// factorization, the selectivity threshold, and leftmost-prefix merging.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/candidate_gen.h"
#include "core/query_template.h"

namespace autoindex {
namespace {

class CandidateGenTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_.CreateTable("t", Schema({{"a", ValueType::kInt},
                                 {"b", ValueType::kInt},
                                 {"c", ValueType::kInt},
                                 {"flag", ValueType::kInt}}));
    db_.CreateTable("u", Schema({{"x", ValueType::kInt},
                                 {"y", ValueType::kInt}}));
    std::vector<Row> t_rows, u_rows;
    for (int i = 0; i < 5000; ++i) {
      t_rows.push_back({Value(int64_t(i)), Value(int64_t(i % 100)),
                        Value(int64_t(i % 7)), Value(int64_t(i % 2))});
    }
    for (int i = 0; i < 5000; ++i) {
      u_rows.push_back({Value(int64_t(i)), Value(int64_t(i % 50))});
    }
    ASSERT_TRUE(db_.BulkInsert("t", std::move(t_rows)).ok());
    ASSERT_TRUE(db_.BulkInsert("u", std::move(u_rows)).ok());
    db_.Analyze();
  }

  std::vector<IndexDef> FromSql(const std::string& sql,
                                CandidateGenConfig config = {}) {
    auto stmt = ParseSql(sql);
    EXPECT_TRUE(stmt.ok()) << sql;
    CandidateGenerator gen(&db_, config);
    return gen.FromStatement(*stmt);
  }

  static bool Has(const std::vector<IndexDef>& defs, const IndexDef& want) {
    return std::any_of(defs.begin(), defs.end(),
                       [&](const IndexDef& d) { return d == want; });
  }

  Database db_;
};

TEST_F(CandidateGenTest, EqualityPredicateYieldsIndex) {
  auto defs = FromSql("SELECT b FROM t WHERE a = 5");
  EXPECT_TRUE(Has(defs, IndexDef("t", {"a"})));
}

TEST_F(CandidateGenTest, CompositeAndYieldsMultiColumnIndex) {
  // The paper: "for predicate a=$ and b>$, generate a candidate on (a,b)".
  auto defs = FromSql("SELECT c FROM t WHERE a = 5 AND b > 90");
  EXPECT_TRUE(Has(defs, IndexDef("t", {"a", "b"})));
}

TEST_F(CandidateGenTest, EqualityColumnsPrecedeRangeColumns) {
  auto defs = FromSql("SELECT c FROM t WHERE b > 90 AND a = 5");
  ASSERT_FALSE(defs.empty());
  // Regardless of textual order, the equality column leads.
  EXPECT_TRUE(Has(defs, IndexDef("t", {"a", "b"})));
  EXPECT_FALSE(Has(defs, IndexDef("t", {"b", "a"})));
}

TEST_F(CandidateGenTest, WeakPredicateRejectedByThreshold) {
  // flag has 2 distinct values: selects half the table — above the 1/3
  // threshold, no index.
  auto defs = FromSql("SELECT a FROM t WHERE flag = 1");
  EXPECT_TRUE(defs.empty());
}

TEST_F(CandidateGenTest, DnfGeneratesPerConjunctIndexes) {
  // (a AND b) OR (a AND c): two conjunctions -> (a,b) and (a,c) candidates
  // (the paper's Example 6).
  auto defs = FromSql(
      "SELECT c FROM t WHERE (a = 1 AND b = 2) OR (a = 3 AND c = 4)");
  EXPECT_TRUE(Has(defs, IndexDef("t", {"a", "b"})));
  EXPECT_TRUE(Has(defs, IndexDef("t", {"a", "c"})));
}

TEST_F(CandidateGenTest, JoinPredicateYieldsJoinColumnIndexes) {
  auto defs = FromSql(
      "SELECT t.a FROM t, u WHERE t.b = u.x AND t.a = 3");
  EXPECT_TRUE(Has(defs, IndexDef("u", {"x"})) ||
              Has(defs, IndexDef("t", {"b"})));
}

TEST_F(CandidateGenTest, OrderByYieldsIndex) {
  auto defs = FromSql("SELECT a FROM t ORDER BY b");
  EXPECT_TRUE(Has(defs, IndexDef("t", {"b"})));
}

TEST_F(CandidateGenTest, GroupByYieldsIndexWhenEffective) {
  // b has 100 distinct over 5000 rows: grouping is effective.
  auto defs = FromSql("SELECT b, COUNT(*) FROM t GROUP BY b");
  EXPECT_TRUE(Has(defs, IndexDef("t", {"b"})));
  // a is unique: grouping by a is a no-op, no index.
  auto none = FromSql("SELECT a, COUNT(*) FROM t GROUP BY a");
  EXPECT_FALSE(Has(none, IndexDef("t", {"a"})));
}

TEST_F(CandidateGenTest, UpdateWhereGeneratesLookupIndex) {
  auto defs = FromSql("UPDATE t SET c = 9 WHERE a = 5 AND b = 3");
  EXPECT_TRUE(Has(defs, IndexDef("t", {"a", "b"})) ||
              Has(defs, IndexDef("t", {"b", "a"})));
}

TEST_F(CandidateGenTest, DeleteWhereGeneratesLookupIndex) {
  auto defs = FromSql("DELETE FROM t WHERE a = 5");
  EXPECT_TRUE(Has(defs, IndexDef("t", {"a"})));
}

TEST_F(CandidateGenTest, InsertGeneratesNothing) {
  EXPECT_TRUE(FromSql("INSERT INTO t VALUES (1, 2, 3, 4)").empty());
}

TEST_F(CandidateGenTest, SmallTablesSkipped) {
  db_.CreateTable("tiny", Schema({{"z", ValueType::kInt}}));
  std::vector<Row> rows;
  for (int i = 0; i < 10; ++i) rows.push_back({Value(int64_t(i))});
  ASSERT_TRUE(db_.BulkInsert("tiny", std::move(rows)).ok());
  db_.Analyze();
  EXPECT_TRUE(FromSql("SELECT z FROM tiny WHERE z = 3").empty());
}

TEST_F(CandidateGenTest, MaxColumnsRespected) {
  CandidateGenConfig config;
  config.max_index_columns = 2;
  auto defs = FromSql(
      "SELECT a FROM t WHERE a = 1 AND b = 2 AND c = 3", config);
  for (const IndexDef& def : defs) {
    EXPECT_LE(def.columns.size(), 2u);
  }
}

TEST(MergeCandidates, DropsExactDuplicates) {
  auto merged = MergeCandidates(
      {IndexDef("t", {"a"}), IndexDef("t", {"a"}), IndexDef("t", {"b"})});
  EXPECT_EQ(merged.size(), 2u);
}

TEST(MergeCandidates, LeftmostPrefixMerge) {
  // (a) is a prefix of (a,b): only (a,b) survives (paper step 3).
  auto merged =
      MergeCandidates({IndexDef("t", {"a"}), IndexDef("t", {"a", "b"})});
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].columns.size(), 2u);
}

TEST(MergeCandidates, NonPrefixSurvives) {
  auto merged =
      MergeCandidates({IndexDef("t", {"b"}), IndexDef("t", {"a", "b"})});
  EXPECT_EQ(merged.size(), 2u);
  // Different tables never merge.
  auto cross =
      MergeCandidates({IndexDef("t", {"a"}), IndexDef("u", {"a", "b"})});
  EXPECT_EQ(cross.size(), 2u);
}

TEST_F(CandidateGenTest, GenerateFiltersExistingAndCaps) {
  TemplateStore store(100);
  store.Observe("SELECT c FROM t WHERE a = 5");
  store.Observe("SELECT c FROM t WHERE b = 50 AND c = 3");
  CandidateGenConfig config;
  CandidateGenerator gen(&db_, config);

  IndexConfig existing;
  auto all = gen.Generate(store.TemplatesByFrequency(), existing);
  EXPECT_FALSE(all.empty());

  // With (a) already built, it must not be re-proposed.
  existing.Add(IndexDef("t", {"a"}));
  auto fresh = gen.Generate(store.TemplatesByFrequency(), existing);
  for (const IndexDef& def : fresh) {
    EXPECT_FALSE(def == IndexDef("t", {"a"}));
  }
}

TEST_F(CandidateGenTest, GenerateHonorsMaxCandidates) {
  TemplateStore store(100);
  for (int i = 0; i < 30; ++i) {
    // Many distinct shapes.
    store.Observe("SELECT a FROM t WHERE b = " + std::to_string(i) +
                  " AND c = " + std::to_string(i % 7) + " AND a = 1");
  }
  CandidateGenConfig config;
  config.max_candidates = 2;
  CandidateGenerator gen(&db_, config);
  auto defs = gen.Generate(store.TemplatesByFrequency(), IndexConfig());
  EXPECT_LE(defs.size(), 2u);
}

}  // namespace
}  // namespace autoindex
