// AutoIndexManager integration: the full Fig.-3 loop against live
// workloads, incremental adaptation across phases, drift handling, and
// budget plumbing.

#include <gtest/gtest.h>

#include <algorithm>

#include "check/validator.h"
#include "core/manager.h"
#include "workload/epidemic.h"
#include "workload/workload.h"

namespace autoindex {
namespace {

AutoIndexConfig FastConfig() {
  AutoIndexConfig config;
  config.mcts.iterations = 80;
  config.mcts.patience = 40;
  config.learn_cost_model = false;
  return config;
}

class ManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    EpidemicWorkload::Populate(&db_, epidemic_);
  }

  // Every integration scenario ends with a full structural validation:
  // whatever the tuning loop built, retired, or rebuilt, the substrate
  // must still be internally consistent.
  void TearDown() override {
    const CheckReport report = CheckAll(db_);
    EXPECT_TRUE(report.ok()) << report.ToString();
  }

  Database db_;
  EpidemicConfig epidemic_;
};

TEST_F(ManagerTest, RoundRecommendsAndAppliesIndexes) {
  AutoIndexManager manager(&db_, FastConfig());
  RunWorkloadObserved(&manager,
                      EpidemicWorkload::PhaseW1(epidemic_, 150, 1));
  EXPECT_GT(manager.templates().size(), 0u);
  TuningResult result = manager.RunManagementRound();
  EXPECT_TRUE(result.applied);
  EXPECT_FALSE(result.added.empty());
  EXPECT_GT(result.est_benefit, 0.0);
  // The recommended indexes are physically built.
  EXPECT_EQ(db_.index_manager().num_indexes(),
            db_.CurrentConfig().defs().size());
  EXPECT_GT(db_.index_manager().num_indexes(), 0u);
}

TEST_F(ManagerTest, DryRunDoesNotTouchIndexes) {
  AutoIndexManager manager(&db_, FastConfig());
  RunWorkloadObserved(&manager,
                      EpidemicWorkload::PhaseW1(epidemic_, 150, 1));
  TuningResult result = manager.RunManagementRound(/*apply=*/false);
  EXPECT_FALSE(result.applied);
  EXPECT_FALSE(result.added.empty());
  EXPECT_EQ(db_.index_manager().num_indexes(), 0u);
}

TEST_F(ManagerTest, AdaptsAcrossPhases) {
  // The Fig. 2 storyline: W1 builds read indexes; W2 (insert-heavy) makes
  // some of them too expensive to keep; the manager must adapt without
  // manual intervention.
  AutoIndexManager manager(&db_, FastConfig());

  RunWorkloadObserved(&manager,
                      EpidemicWorkload::PhaseW1(epidemic_, 200, 1));
  TuningResult r1 = manager.RunManagementRound();
  const size_t after_w1 = db_.index_manager().num_indexes();
  EXPECT_GT(after_w1, 0u);

  // Phase W2: heavy inserts. Several rounds of drifted traffic.
  RunWorkloadObserved(&manager,
                      EpidemicWorkload::PhaseW2(epidemic_, 400, 2));
  TuningResult r2 = manager.RunManagementRound();
  // Adaptation happened: either indexes were dropped, or at minimum no
  // new read indexes were piled on.
  EXPECT_LE(db_.index_manager().num_indexes(), after_w1 + 1);

  // Phase W3: update-heavy keyed by (name, community).
  RunWorkloadObserved(&manager,
                      EpidemicWorkload::PhaseW3(epidemic_, 300, 3));
  TuningResult r3 = manager.RunManagementRound();
  // The W3 lookup pattern should now be servable by some index on name
  // and/or community.
  bool has_name_index = false;
  for (const BuiltIndex* index : db_.index_manager().AllIndexes()) {
    for (const std::string& col : index->def().columns) {
      if (col == "name") has_name_index = true;
    }
  }
  EXPECT_TRUE(has_name_index)
      << "W3's update lookups want an index containing name";
}

TEST_F(ManagerTest, MeasuredCostImprovesAfterTuning) {
  AutoIndexManager manager(&db_, FastConfig());
  const auto queries = EpidemicWorkload::PhaseW1(epidemic_, 200, 7);
  RunMetrics before = RunWorkloadObserved(&manager, queries);
  manager.RunManagementRound();
  RunMetrics after =
      RunWorkload(&db_, EpidemicWorkload::PhaseW1(epidemic_, 200, 8));
  EXPECT_LT(after.total_cost, before.total_cost);
}

TEST_F(ManagerTest, DiagnoseFlagsMissingIndexes) {
  AutoIndexManager manager(&db_, FastConfig());
  RunWorkloadObserved(&manager,
                      EpidemicWorkload::PhaseW1(epidemic_, 150, 1));
  DiagnosisReport report = manager.Diagnose();
  EXPECT_FALSE(report.unbuilt_beneficial.empty());
  EXPECT_TRUE(report.should_tune);
}

TEST_F(ManagerTest, StorageBudgetLimitsFootprint) {
  AutoIndexConfig config = FastConfig();
  config.storage_budget_bytes = 2 * 1024 * 1024;  // 2 MiB
  AutoIndexManager manager(&db_, config);
  RunWorkloadObserved(&manager,
                      EpidemicWorkload::PhaseW1(epidemic_, 200, 1));
  RunWorkloadObserved(&manager,
                      EpidemicWorkload::PhaseW3(epidemic_, 200, 2));
  manager.RunManagementRound();
  EXPECT_LE(db_.index_manager().TotalIndexBytes(),
            config.storage_budget_bytes + kPageSizeBytes)
      << "built estate must respect the budget (page-granularity slack)";
}

TEST_F(ManagerTest, ObserveOnlyCollectsTemplates) {
  AutoIndexManager manager(&db_, FastConfig());
  ObserveWorkload(&manager, EpidemicWorkload::PhaseW1(epidemic_, 50, 1));
  EXPECT_GT(manager.templates().size(), 0u);
  EXPECT_EQ(manager.templates().total_observed(), 50u);
}

TEST_F(ManagerTest, TrainingDataAccumulatesWhenEnabled) {
  AutoIndexConfig config = FastConfig();
  config.learn_cost_model = true;
  config.observation_sample_rate = 1.0;  // sample everything
  AutoIndexManager manager(&db_, config);
  RunWorkloadObserved(&manager,
                      EpidemicWorkload::PhaseW1(epidemic_, 80, 1));
  EXPECT_EQ(manager.estimator().num_observations(), 80u);
  // With min_observations defaulting to 64, a round trains the model.
  manager.RunManagementRound();
  EXPECT_TRUE(manager.estimator().model_trained());
}

TEST_F(ManagerTest, ExecutionFeedbackReachesEstimator) {
  // With cost-model learning on, every executed statement's access-path
  // (estimated, observed) pairs flow from the operator pipeline through
  // the executor's feedback hook into the benefit estimator.
  AutoIndexConfig config = FastConfig();
  config.learn_cost_model = true;
  AutoIndexManager manager(&db_, config);
  RunWorkloadObserved(&manager,
                      EpidemicWorkload::PhaseW1(epidemic_, 150, 1));
  EXPECT_GT(manager.estimator().num_feedback_pairs(), 0u);
  manager.RunManagementRound();
  ASSERT_GT(db_.index_manager().num_indexes(), 0u);

  // Re-run the phase over the freshly built indexes and track which ones
  // the executor reports using.
  std::vector<std::string> used;
  for (const std::string& sql :
       EpidemicWorkload::PhaseW1(epidemic_, 150, 2)) {
    auto r = manager.ExecuteAndObserve(sql);
    ASSERT_TRUE(r.ok()) << sql;
    for (const std::string& name : r->indexes_used) {
      if (std::find(used.begin(), used.end(), name) == used.end()) {
        used.push_back(name);
      }
    }
  }
  ASSERT_FALSE(used.empty()) << "tuned workload should hit its indexes";

  // Every index-scan access path the workload exercised must have fed at
  // least one (estimated, observed) pair back to the estimator.
  for (const std::string& name : used) {
    std::string table;
    for (const BuiltIndex* index : db_.index_manager().AllIndexes()) {
      if (index->def().DisplayName() == name) table = index->def().table;
    }
    ASSERT_FALSE(table.empty()) << name;
    EXPECT_TRUE(manager.estimator().HasFeedbackFor(table, name)) << name;
    const double ratio = manager.estimator().FeedbackCostRatio(table, name);
    EXPECT_GT(ratio, 0.0) << name;
  }

  // The feedback channel is separate from the training-observation store:
  // sampling config governs the latter, not the former.
  EXPECT_GT(manager.estimator().num_feedback_pairs(), used.size());
}

TEST_F(ManagerTest, FeedbackHookNotInstalledWhenLearningOff) {
  AutoIndexManager manager(&db_, FastConfig());  // learn_cost_model = false
  RunWorkloadObserved(&manager,
                      EpidemicWorkload::PhaseW1(epidemic_, 60, 1));
  EXPECT_EQ(manager.estimator().num_feedback_pairs(), 0u);
}

TEST_F(ManagerTest, ElapsedTimeReported) {
  AutoIndexManager manager(&db_, FastConfig());
  RunWorkloadObserved(&manager,
                      EpidemicWorkload::PhaseW1(epidemic_, 100, 1));
  TuningResult result = manager.RunManagementRound();
  EXPECT_GT(result.elapsed_ms, 0.0);
  EXPECT_GT(result.templates_considered, 0u);
}

}  // namespace
}  // namespace autoindex
