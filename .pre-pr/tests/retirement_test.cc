// The diagnosis-driven retirement pass (Fig. 1 behaviour): dead/redundant
// indexes are dropped when unused and cost-neutral; live ones survive.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/manager.h"
#include "workload/workload.h"

namespace autoindex {
namespace {

class RetirementTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_.CreateTable("hot", Schema({{"a", ValueType::kInt},
                                   {"b", ValueType::kInt}}));
    db_.CreateTable("cold", Schema({{"x", ValueType::kInt},
                                    {"y", ValueType::kInt}}));
    std::vector<Row> rows;
    Random rng(99);
    for (int i = 0; i < 20000; ++i) {
      // a is non-unique (2000 distinct) so multi-column indexes genuinely
      // beat the single-column prefix; b is independent of a.
      rows.push_back({Value(int64_t(i % 2000)),
                      Value(rng.UniformInt(0, 49))});
    }
    ASSERT_TRUE(db_.BulkInsert("hot", std::move(rows)).ok());
    rows.clear();
    for (int i = 0; i < 5000; ++i) {
      rows.push_back({Value(int64_t(i)), Value(int64_t(i % 10))});
    }
    ASSERT_TRUE(db_.BulkInsert("cold", std::move(rows)).ok());
    db_.Analyze();
  }

  static AutoIndexConfig FastConfig() {
    AutoIndexConfig config;
    config.mcts.iterations = 60;
    config.learn_cost_model = false;
    return config;
  }

  bool Built(const IndexDef& def) {
    return db_.index_manager().HasIndex(def);
  }

  Database db_;
};

TEST_F(RetirementTest, DropsIndexOnUntouchedTable) {
  ASSERT_TRUE(db_.CreateIndex(IndexDef("cold", {"x"})).ok());
  AutoIndexManager manager(&db_, FastConfig());
  // Workload only touches `hot`.
  for (int i = 0; i < 50; ++i) {
    manager.ExecuteAndObserve("SELECT b FROM hot WHERE a = " +
                              std::to_string(i * 17 % 20000));
  }
  manager.RunManagementRound();
  EXPECT_FALSE(Built(IndexDef("cold", {"x"})))
      << "dead index must be retired";
}

TEST_F(RetirementTest, KeepsIndexThePlannerUses) {
  ASSERT_TRUE(db_.CreateIndex(IndexDef("hot", {"a"})).ok());
  AutoIndexManager manager(&db_, FastConfig());
  for (int i = 0; i < 50; ++i) {
    manager.ExecuteAndObserve("SELECT b FROM hot WHERE a = " +
                              std::to_string(i * 17 % 2000));
  }
  manager.RunManagementRound();
  EXPECT_TRUE(Built(IndexDef("hot", {"a"})));
}

TEST_F(RetirementTest, DropsPrefixShadowedIndex) {
  // (a) is shadowed by (a,b): the planner prefers the wider one for a+b
  // queries, and (a,b) also serves plain a-lookups.
  ASSERT_TRUE(db_.CreateIndex(IndexDef("hot", {"a"})).ok());
  ASSERT_TRUE(db_.CreateIndex(IndexDef("hot", {"a", "b"})).ok());
  AutoIndexManager manager(&db_, FastConfig());
  for (int i = 0; i < 60; ++i) {
    manager.ExecuteAndObserve(
        "SELECT b FROM hot WHERE a = " + std::to_string(i * 31 % 2000) +
        " AND b = " + std::to_string(i % 50));
  }
  manager.RunManagementRound();
  EXPECT_TRUE(Built(IndexDef("hot", {"a", "b"})));
  EXPECT_FALSE(Built(IndexDef("hot", {"a"})))
      << "prefix-shadowed index should be retired";
}

TEST_F(RetirementTest, DisabledFlagLeavesRetirementToSearchOnly) {
  // With zero MCTS iterations, the search cannot remove anything; only
  // the retirement pass could. Disabling it must keep the dead index,
  // enabling it must drop it — this isolates the pass itself.
  for (bool drop : {false, true}) {
    Database db;
    db.CreateTable("hot", Schema({{"a", ValueType::kInt}}));
    db.CreateTable("cold", Schema({{"x", ValueType::kInt}}));
    std::vector<Row> rows;
    for (int i = 0; i < 5000; ++i) rows.push_back({Value(int64_t(i))});
    ASSERT_TRUE(db.BulkInsert("hot", std::move(rows)).ok());
    rows.clear();
    for (int i = 0; i < 5000; ++i) rows.push_back({Value(int64_t(i))});
    ASSERT_TRUE(db.BulkInsert("cold", std::move(rows)).ok());
    db.Analyze();
    ASSERT_TRUE(db.CreateIndex(IndexDef("cold", {"x"})).ok());

    AutoIndexConfig config = FastConfig();
    config.mcts.iterations = 0;
    config.drop_unused_indexes = drop;
    AutoIndexManager manager(&db, config);
    for (int i = 0; i < 30; ++i) {
      manager.ExecuteAndObserve("SELECT a FROM hot WHERE a = 5");
    }
    manager.RunManagementRound();
    EXPECT_EQ(db.index_manager().HasIndex(IndexDef("cold", {"x"})), !drop)
        << "drop_unused_indexes=" << drop;
  }
}

TEST_F(RetirementTest, FreshlyAddedIndexSurvivesItsOwnRound) {
  AutoIndexManager manager(&db_, FastConfig());
  for (int i = 0; i < 50; ++i) {
    manager.ExecuteAndObserve("SELECT b FROM hot WHERE a = " +
                              std::to_string(i * 17 % 20000));
  }
  TuningResult tuning = manager.RunManagementRound();
  ASSERT_FALSE(tuning.added.empty());
  for (const IndexDef& def : tuning.added) {
    EXPECT_TRUE(Built(def)) << def.DisplayName();
  }
  // And it survives the immediately following round too (it is now
  // cost-positive for the remembered workload).
  manager.RunManagementRound();
  for (const IndexDef& def : tuning.added) {
    EXPECT_TRUE(Built(def)) << def.DisplayName();
  }
}

}  // namespace
}  // namespace autoindex
