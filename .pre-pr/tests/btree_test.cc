// B+Tree unit and property tests, including a randomized differential test
// against std::multimap as the reference model.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "check/validator.h"
#include "engine/database.h"
#include "index/btree.h"
#include "util/random.h"

namespace autoindex {
namespace {

Row Key(int64_t v) { return Row{Value(v)}; }
Row Key2(int64_t a, int64_t b) { return Row{Value(a), Value(b)}; }

TEST(BTree, EmptyTree) {
  BTree tree(8, 8);
  EXPECT_EQ(tree.num_entries(), 0u);
  EXPECT_EQ(tree.height(), 1u);
  EXPECT_EQ(tree.num_nodes(), 1u);
  EXPECT_FALSE(tree.Contains(Key(1)));
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(BTree, InsertAndLookup) {
  BTree tree(8, 8);
  for (int64_t i = 0; i < 100; ++i) tree.Insert(Key(i * 2), i);
  EXPECT_EQ(tree.num_entries(), 100u);
  EXPECT_TRUE(tree.Contains(Key(50)));
  EXPECT_FALSE(tree.Contains(Key(51)));
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(BTree, SplitsGrowHeight) {
  BTree tree(4, 4);
  for (int64_t i = 0; i < 200; ++i) tree.Insert(Key(i), i);
  EXPECT_GT(tree.height(), 2u);
  EXPECT_GT(tree.num_splits(), 10u);
  EXPECT_GT(tree.num_nodes(), 20u);
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(BTree, DuplicateKeysAllowed) {
  BTree tree(8, 8);
  for (int64_t rid = 0; rid < 50; ++rid) tree.Insert(Key(7), rid);
  EXPECT_EQ(tree.num_entries(), 50u);
  const auto rids = tree.PrefixLookup(Key(7));
  EXPECT_EQ(rids.size(), 50u);
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(BTree, DeleteSpecificEntry) {
  BTree tree(8, 8);
  tree.Insert(Key(1), 10);
  tree.Insert(Key(1), 11);
  EXPECT_TRUE(tree.Delete(Key(1), 10));
  EXPECT_FALSE(tree.Delete(Key(1), 10));  // already gone
  EXPECT_EQ(tree.num_entries(), 1u);
  const auto rids = tree.PrefixLookup(Key(1));
  ASSERT_EQ(rids.size(), 1u);
  EXPECT_EQ(rids[0], 11u);
}

TEST(BTree, DeleteThenReinsertStaysScannable) {
  BTree tree(4, 4);
  for (int64_t i = 0; i < 64; ++i) tree.Insert(Key(i), i);
  for (int64_t i = 0; i < 64; ++i) EXPECT_TRUE(tree.Delete(Key(i), i));
  EXPECT_EQ(tree.num_entries(), 0u);
  for (int64_t i = 0; i < 64; ++i) tree.Insert(Key(i), i + 100);
  EXPECT_EQ(tree.num_entries(), 64u);
  size_t count = 0;
  tree.Scan(nullptr, true, nullptr, true, [&](const Row&, RowId) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 64u);
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(BTree, RangeScanInclusiveExclusive) {
  BTree tree(8, 8);
  for (int64_t i = 0; i < 20; ++i) tree.Insert(Key(i), i);
  std::vector<RowId> rids;
  Row lo = Key(5), hi = Key(10);
  tree.Scan(&lo, true, &hi, true, [&](const Row&, RowId rid) {
    rids.push_back(rid);
    return true;
  });
  ASSERT_EQ(rids.size(), 6u);
  EXPECT_EQ(rids.front(), 5u);
  EXPECT_EQ(rids.back(), 10u);

  rids.clear();
  tree.Scan(&lo, false, &hi, false, [&](const Row&, RowId rid) {
    rids.push_back(rid);
    return true;
  });
  ASSERT_EQ(rids.size(), 4u);
  EXPECT_EQ(rids.front(), 6u);
  EXPECT_EQ(rids.back(), 9u);
}

TEST(BTree, UnboundedScansAndEarlyStop) {
  BTree tree(8, 8);
  for (int64_t i = 0; i < 30; ++i) tree.Insert(Key(i), i);
  size_t count = 0;
  tree.Scan(nullptr, true, nullptr, true, [&](const Row&, RowId) {
    ++count;
    return count < 10;  // early stop
  });
  EXPECT_EQ(count, 10u);

  Row lo = Key(25);
  count = 0;
  tree.Scan(&lo, true, nullptr, true, [&](const Row&, RowId) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 5u);
}

TEST(BTree, CompositeKeyPrefixScan) {
  BTree tree(8, 8);
  for (int64_t a = 0; a < 10; ++a) {
    for (int64_t b = 0; b < 10; ++b) {
      tree.Insert(Key2(a, b), a * 10 + b);
    }
  }
  // Prefix lookup on the first column only.
  const auto rids = tree.PrefixLookup(Key(4));
  ASSERT_EQ(rids.size(), 10u);
  for (RowId rid : rids) EXPECT_EQ(rid / 10, 4u);

  // Full composite lookup.
  const auto one = tree.PrefixLookup(Key2(4, 7));
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 47u);

  // Range on the second column under an equality prefix.
  Row lo = Key2(4, 3), hi = Key2(4, 5);
  std::vector<RowId> range;
  tree.Scan(&lo, true, &hi, true, [&](const Row&, RowId rid) {
    range.push_back(rid);
    return true;
  });
  ASSERT_EQ(range.size(), 3u);
  EXPECT_EQ(range[0], 43u);
  EXPECT_EQ(range[2], 45u);
}

TEST(BTree, PagesTouchedAccounting) {
  BTree tree(16, 16);
  for (int64_t i = 0; i < 2000; ++i) tree.Insert(Key(i), i);
  size_t pages_point = 0;
  tree.PrefixLookup(Key(1234), &pages_point);
  EXPECT_GE(pages_point, tree.height());
  EXPECT_LE(pages_point, tree.height() + 2);

  size_t pages_scan = 0;
  Row lo = Key(0), hi = Key(1999);
  tree.Scan(&lo, true, &hi, true,
            [](const Row&, RowId) { return true; }, &pages_scan);
  EXPECT_GT(pages_scan, 100u);  // touches every leaf
}

TEST(BTree, StringKeys) {
  BTree tree(8, 8);
  tree.Insert({Value("banana")}, 1);
  tree.Insert({Value("apple")}, 2);
  tree.Insert({Value("cherry")}, 3);
  std::vector<RowId> order;
  tree.Scan(nullptr, true, nullptr, true, [&](const Row&, RowId rid) {
    order.push_back(rid);
    return true;
  });
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 2u);  // apple
  EXPECT_EQ(order[1], 1u);  // banana
  EXPECT_EQ(order[2], 3u);  // cherry
}

// --- Differential property test against std::multimap ---

struct RefKey {
  Row key;
  RowId rid;
  bool operator<(const RefKey& o) const {
    const int c = CompareRows(key, o.key);
    if (c != 0) return c < 0;
    return rid < o.rid;
  }
};

class BTreeDifferential : public ::testing::TestWithParam<int> {};

TEST_P(BTreeDifferential, MatchesReferenceModel) {
  const int seed = GetParam();
  Random rng(seed);
  BTree tree(6, 6);  // small capacities force deep trees
  std::map<RefKey, int> reference;

  for (int op = 0; op < 4000; ++op) {
    const int64_t a = rng.UniformInt(0, 40);
    const int64_t b = rng.UniformInt(0, 40);
    const Row key = Key2(a, b);
    const RowId rid = rng.Uniform(50);
    if (rng.Bernoulli(0.65)) {
      if (reference.count({key, rid}) == 0) {
        tree.Insert(key, rid);
        reference[{key, rid}] = 1;
      }
    } else {
      const bool tree_had = tree.Delete(key, rid);
      const bool ref_had = reference.erase({key, rid}) > 0;
      EXPECT_EQ(tree_had, ref_had) << "op " << op;
    }
  }
  EXPECT_EQ(tree.num_entries(), reference.size());
  ASSERT_TRUE(tree.CheckInvariants());

  // Full scans agree in order and content.
  std::vector<RefKey> scanned;
  tree.Scan(nullptr, true, nullptr, true, [&](const Row& k, RowId rid) {
    scanned.push_back({k, rid});
    return true;
  });
  ASSERT_EQ(scanned.size(), reference.size());
  size_t i = 0;
  for (const auto& [ref_key, _] : reference) {
    EXPECT_EQ(CompareRows(scanned[i].key, ref_key.key), 0) << "pos " << i;
    EXPECT_EQ(scanned[i].rid, ref_key.rid) << "pos " << i;
    ++i;
  }

  // Random prefix lookups agree with the model.
  for (int trial = 0; trial < 50; ++trial) {
    const int64_t a = rng.UniformInt(0, 40);
    const auto rids = tree.PrefixLookup(Key(a));
    size_t expected = 0;
    for (const auto& [rk, _] : reference) {
      if (rk.key[0].AsInt() == a) ++expected;
    }
    EXPECT_EQ(rids.size(), expected) << "prefix " << a;
  }

  // Random range scans agree with the model.
  for (int trial = 0; trial < 50; ++trial) {
    int64_t lo_v = rng.UniformInt(0, 40), hi_v = rng.UniformInt(0, 40);
    if (lo_v > hi_v) std::swap(lo_v, hi_v);
    Row lo = Key(lo_v), hi = Key(hi_v);
    size_t got = 0;
    tree.Scan(&lo, true, &hi, true, [&](const Row&, RowId) {
      ++got;
      return true;
    });
    size_t expected = 0;
    for (const auto& [rk, _] : reference) {
      const int64_t v = rk.key[0].AsInt();
      if (v >= lo_v && v <= hi_v) ++expected;
    }
    EXPECT_EQ(got, expected) << "range [" << lo_v << "," << hi_v << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BTreeDifferential,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// Full-stack closing check: after a mutation-heavy SQL workload over real
// indexes, every structural validator in src/check/ must pass.
TEST(BTree, CheckAllAfterMutationHeavyWorkload) {
  Database db;
  auto created = db.CreateTable("t", Schema({{"a", ValueType::kInt},
                                             {"b", ValueType::kInt},
                                             {"c", ValueType::kInt}}));
  ASSERT_TRUE(created.ok());
  std::vector<Row> rows;
  for (int i = 0; i < 4000; ++i) {
    rows.push_back({Value(int64_t(i)), Value(int64_t(i % 50)),
                    Value(int64_t(i % 11))});
  }
  ASSERT_TRUE(db.BulkInsert("t", std::move(rows)).ok());
  ASSERT_TRUE(db.CreateIndex(IndexDef("t", {"a"})).ok());
  ASSERT_TRUE(db.CreateIndex(IndexDef("t", {"b", "c"})).ok());
  Random rng(17);
  for (int i = 0; i < 300; ++i) {
    const int64_t v = rng.UniformInt(0, 3999);
    switch (rng.Uniform(3)) {
      case 0:
        ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (" +
                               std::to_string(10000 + i) + ", 1, 2)")
                        .ok());
        break;
      case 1:
        ASSERT_TRUE(db.Execute("DELETE FROM t WHERE a = " +
                               std::to_string(v))
                        .ok());
        break;
      default:
        ASSERT_TRUE(db.Execute("UPDATE t SET b = 7 WHERE a = " +
                               std::to_string(v))
                        .ok());
        break;
    }
  }
  const CheckReport report = CheckAll(db);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_GT(report.structures_checked(), 0u);
}

}  // namespace
}  // namespace autoindex
