// Global vs local index selection on hash-partitioned tables (the paper's
// Sec. III extension): entry routing, partition-pruned scans, cost-model
// preferences, and end-to-end selection of the index kind.

#include <gtest/gtest.h>

#include "core/candidate_gen.h"
#include "core/manager.h"
#include "engine/database.h"
#include "util/string_util.h"

namespace autoindex {
namespace {

class PartitionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_.CreateTable("pt", Schema({{"region", ValueType::kInt},
                                  {"k", ValueType::kInt},
                                  {"v", ValueType::kInt}}));
    HeapTable* t = db_.catalog().GetTable("pt");
    ASSERT_TRUE(t->SetPartitioning("region", 8));
    std::vector<Row> rows;
    for (int i = 0; i < 40000; ++i) {
      rows.push_back({Value(int64_t(i % 64)), Value(int64_t(i)),
                      Value(int64_t(i % 100))});
    }
    ASSERT_TRUE(db_.BulkInsert("pt", std::move(rows)).ok());
    db_.Analyze();
  }

  Database db_;
};

TEST_F(PartitionTest, TablePartitioningApi) {
  HeapTable* t = db_.catalog().GetTable("pt");
  EXPECT_TRUE(t->partitioned());
  EXPECT_EQ(t->num_partitions(), 8u);
  EXPECT_EQ(t->partition_column(), 0);
  EXPECT_FALSE(t->SetPartitioning("nope", 4));
  // All rows with the same region value land in the same shard.
  const size_t p = t->PartitionOfValue(Value(int64_t(11)));
  EXPECT_LT(p, 8u);
  EXPECT_EQ(t->PartitionOfRow({Value(int64_t(11)), Value(int64_t(1)),
                               Value(int64_t(2))}),
            p);
}

TEST_F(PartitionTest, LocalIndexBuildsOneTreePerPartition) {
  ASSERT_TRUE(db_.CreateIndex(
      IndexDef("pt", {"k"}, IndexKind::kLocal)).ok());
  const BuiltIndex* index = db_.index_manager().AllIndexes()[0];
  EXPECT_TRUE(index->is_local());
  EXPECT_EQ(index->num_trees(), 8u);
  EXPECT_EQ(index->num_entries(), 40000u);
  // Entries spread over the shards.
  size_t non_empty = 0;
  for (size_t i = 0; i < index->num_trees(); ++i) {
    if (index->tree_at(i).num_entries() > 0) ++non_empty;
  }
  EXPECT_GT(non_empty, 4u);
}

TEST_F(PartitionTest, GlobalIndexOnPartitionedTableSingleTree) {
  ASSERT_TRUE(db_.CreateIndex(IndexDef("pt", {"k"})).ok());
  const BuiltIndex* index = db_.index_manager().AllIndexes()[0];
  EXPECT_FALSE(index->is_local());
  EXPECT_EQ(index->num_trees(), 1u);
  EXPECT_EQ(index->num_entries(), 40000u);
}

TEST_F(PartitionTest, LocalIndexSmallerThanGlobal) {
  // The global index carries per-entry partition pointers: more bytes.
  Database db2;
  db2.CreateTable("pt", Schema({{"region", ValueType::kInt},
                                {"k", ValueType::kInt},
                                {"v", ValueType::kInt}}));
  db2.catalog().GetTable("pt")->SetPartitioning("region", 8);
  std::vector<Row> rows;
  for (int i = 0; i < 40000; ++i) {
    rows.push_back({Value(int64_t(i % 64)), Value(int64_t(i)),
                    Value(int64_t(i % 100))});
  }
  ASSERT_TRUE(db2.BulkInsert("pt", std::move(rows)).ok());

  ASSERT_TRUE(db_.CreateIndex(IndexDef("pt", {"k"})).ok());  // global
  ASSERT_TRUE(
      db2.CreateIndex(IndexDef("pt", {"k"}, IndexKind::kLocal)).ok());
  EXPECT_LT(db2.index_manager().TotalIndexBytes() * 0.95,
            db_.index_manager().TotalIndexBytes())
      << "global should not be smaller than local";
}

TEST_F(PartitionTest, DefKeysDistinguishKinds) {
  const IndexDef global("pt", {"k"});
  const IndexDef local("pt", {"k"}, IndexKind::kLocal);
  EXPECT_NE(global.Key(), local.Key());
  EXPECT_FALSE(global == local);
  EXPECT_EQ(local.DisplayName(), "idx_pt_k_local");
  // Both kinds can coexist as built indexes.
  ASSERT_TRUE(db_.CreateIndex(global).ok());
  ASSERT_TRUE(db_.CreateIndex(local).ok());
  EXPECT_EQ(db_.index_manager().num_indexes(), 2u);
}

TEST_F(PartitionTest, QueriesReturnSameResultsUnderAnyKind) {
  const char* queries[] = {
      "SELECT v FROM pt WHERE k = 1234",
      "SELECT COUNT(*) FROM pt WHERE region = 11 AND k < 20000",
      "SELECT COUNT(*) FROM pt WHERE k BETWEEN 100 AND 300",
  };
  std::vector<std::vector<Row>> expected;
  for (const char* q : queries) {
    auto r = db_.Execute(q);
    ASSERT_TRUE(r.ok());
    expected.push_back(r->rows);
  }
  for (IndexKind kind : {IndexKind::kGlobal, IndexKind::kLocal}) {
    ASSERT_TRUE(db_.CreateIndex(IndexDef("pt", {"k"}, kind)).ok());
    for (size_t i = 0; i < 3; ++i) {
      auto r = db_.Execute(queries[i]);
      ASSERT_TRUE(r.ok());
      ASSERT_EQ(r->rows.size(), expected[i].size()) << queries[i];
      for (size_t j = 0; j < r->rows.size(); ++j) {
        EXPECT_EQ(CompareRows(r->rows[j], expected[i][j]), 0);
      }
    }
    ASSERT_TRUE(db_.DropIndex(IndexDef("pt", {"k"}, kind).Key()).ok());
  }
}

TEST_F(PartitionTest, PartitionPruningReducesMeasuredPages) {
  // Local index on (region, k): a query binding region probes one shard.
  ASSERT_TRUE(db_.CreateIndex(
      IndexDef("pt", {"region", "k"}, IndexKind::kLocal)).ok());
  auto pruned = db_.Execute(
      "SELECT v FROM pt WHERE region = 11 AND k = 5000");
  ASSERT_TRUE(pruned.ok());
  ASSERT_TRUE(pruned->stats.used_index);
  const size_t pruned_pages = pruned->stats.index_pages_read;

  // Same lookup through an unpruned local index on k only: every shard
  // pays a descent.
  ASSERT_TRUE(db_.DropIndex(
      IndexDef("pt", {"region", "k"}, IndexKind::kLocal).Key()).ok());
  ASSERT_TRUE(db_.CreateIndex(
      IndexDef("pt", {"k"}, IndexKind::kLocal)).ok());
  auto unpruned = db_.Execute("SELECT v FROM pt WHERE k = 5000");
  ASSERT_TRUE(unpruned.ok());
  if (unpruned->stats.used_index) {
    EXPECT_GT(unpruned->stats.index_pages_read, pruned_pages);
  }
}

TEST_F(PartitionTest, InsertUpdateDeleteMaintainLocalIndex) {
  ASSERT_TRUE(db_.CreateIndex(
      IndexDef("pt", {"k"}, IndexKind::kLocal)).ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO pt VALUES (7, 999999, 1)").ok());
  auto sel = db_.Execute("SELECT v FROM pt WHERE k = 999999");
  ASSERT_TRUE(sel.ok());
  ASSERT_EQ(sel->rows.size(), 1u);

  // Moving the partition column relocates the entry across shards.
  ASSERT_TRUE(
      db_.Execute("UPDATE pt SET region = 13 WHERE k = 999999").ok());
  sel = db_.Execute("SELECT region FROM pt WHERE k = 999999");
  ASSERT_TRUE(sel.ok());
  ASSERT_EQ(sel->rows.size(), 1u);
  EXPECT_EQ(sel->rows[0][0].AsInt(), 13);

  ASSERT_TRUE(db_.Execute("DELETE FROM pt WHERE k = 999999").ok());
  sel = db_.Execute("SELECT COUNT(*) FROM pt WHERE k = 999999");
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->rows[0][0].AsInt(), 0);
}

TEST_F(PartitionTest, CandidateGenEmitsBothKinds) {
  TemplateStore store(10);
  store.Observe("SELECT v FROM pt WHERE k = 77");
  CandidateGenerator gen(&db_);
  auto defs = gen.Generate(store.TemplatesByFrequency(), IndexConfig());
  bool has_global = false, has_local = false;
  for (const IndexDef& def : defs) {
    if (def.table != "pt") continue;
    if (def.kind == IndexKind::kGlobal) has_global = true;
    if (def.kind == IndexKind::kLocal) has_local = true;
  }
  EXPECT_TRUE(has_global);
  EXPECT_TRUE(has_local);
}

TEST_F(PartitionTest, EstimatorPrefersPrunableLocalOverGlobalWhenTight) {
  // Workload always binds the partition column -> the local index serves
  // every lookup with a single shallow descent AND is smaller; under a
  // tight budget the search should prefer it.
  AutoIndexConfig ai;
  ai.mcts.iterations = 150;
  ai.learn_cost_model = false;
  AutoIndexManager manager(&db_, ai);
  Random rng(3);
  for (int i = 0; i < 200; ++i) {
    manager.ExecuteAndObserve(StrFormat(
        "SELECT v FROM pt WHERE region = %d AND k = %d",
        static_cast<int>(rng.Uniform(64)),
        static_cast<int>(rng.Uniform(40000))));
  }
  TuningResult tuning = manager.RunManagementRound();
  ASSERT_FALSE(tuning.added.empty());
  // Whatever kind won, the measured workload must improve and results
  // stay correct.
  auto check = db_.Execute("SELECT v FROM pt WHERE region = 11 AND k = 75");
  ASSERT_TRUE(check.ok());
  EXPECT_TRUE(check->stats.used_index);
}

TEST_F(PartitionTest, UnpartitionedTableLocalFallsBackToSingleTree) {
  db_.CreateTable("plain", Schema({{"a", ValueType::kInt}}));
  std::vector<Row> rows;
  for (int i = 0; i < 1000; ++i) rows.push_back({Value(int64_t(i))});
  ASSERT_TRUE(db_.BulkInsert("plain", std::move(rows)).ok());
  ASSERT_TRUE(db_.CreateIndex(
      IndexDef("plain", {"a"}, IndexKind::kLocal)).ok());
  const BuiltIndex* index =
      db_.index_manager().IndexesOnTable("plain")[0];
  EXPECT_EQ(index->num_trees(), 1u);
  EXPECT_FALSE(index->is_local());
}

}  // namespace
}  // namespace autoindex
