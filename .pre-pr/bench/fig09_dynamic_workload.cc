// Reproduces Figure 9: throughput over time on a dynamic TPC-C workload
// whose transaction mix drifts each phase; index management runs between
// phases (the paper tunes every five minutes).
// Paper shape: Default slowly degrades as tables grow; Greedy helps but
// lags; AutoIndex adapts each round and stays on top.

#include "bench/bench_util.h"
#include "workload/tpcc.h"

using namespace autoindex;         // NOLINT
using namespace autoindex::bench;  // NOLINT

namespace {

constexpr int kPhases = 6;
constexpr size_t kTxnsPerPhase = 400;

TpccMix PhaseMix(int phase) {
  switch (phase % 3) {
    case 0:
      return TpccMix();  // standard
    case 1:
      return TpccWorkload::WriteHeavyMix();
    default:
      return TpccWorkload::ReadHeavyMix();
  }
}

}  // namespace

int main() {
  PrintHeader("Figure 9 — Throughput timeline on a dynamic TPC-C workload");

  // Three separately-populated databases, one per method.
  Database def_db, greedy_db, auto_db;
  TpccConfig config;
  config.warehouses = 2;
  for (Database* db : {&def_db, &greedy_db, &auto_db}) {
    TpccWorkload::Populate(db, config);
    TpccWorkload::CreateDefaultIndexes(db);
  }

  AutoIndexConfig ai;
  ai.learn_cost_model = false;  // both methods share the static Sec.-V estimator (paper fairness)
  ai.mcts.iterations = 200;
  AutoIndexManager manager(&auto_db, ai);

  std::printf("\n%-8s %-12s %12s %12s %12s %14s\n", "phase", "mix",
              "Default", "Greedy", "AutoIndex", "mgmt ms (G/A)");
  PrintRule();
  for (int phase = 0; phase < kPhases; ++phase) {
    const TpccMix mix = PhaseMix(phase);
    const char* mix_name =
        phase % 3 == 0 ? "standard" : (phase % 3 == 1 ? "write-heavy"
                                                      : "read-heavy");
    const auto queries =
        TpccWorkload::Generate(config, kTxnsPerPhase, 100 + phase, mix);

    RunMetrics def_m = RunWorkload(&def_db, queries);
    RunMetrics greedy_m = RunWorkload(&greedy_db, queries);
    RunMetrics auto_m = RunWorkloadObserved(&manager, queries);

    // Inter-phase management (the "every five minutes" tuning).
    double greedy_ms = 0.0;
    GreedyResult greedy_sel =
        RunGreedyPipeline(&greedy_db, queries, 0, &greedy_ms);
    ApplyGreedy(&greedy_db, greedy_sel);
    TuningResult auto_tuning = manager.RunManagementRound();

    std::printf("%-8d %-12s %12.3f %12.3f %12.3f %7.0f/%-7.0f\n", phase + 1,
                mix_name, def_m.Throughput(), greedy_m.Throughput(),
                auto_m.Throughput(), greedy_ms, auto_tuning.elapsed_ms);
  }
  PrintRule();
  std::printf("indexes at end: Default %zu, Greedy %zu, AutoIndex %zu\n",
              def_db.index_manager().num_indexes(),
              greedy_db.index_manager().num_indexes(),
              auto_db.index_manager().num_indexes());
  std::printf("\npaper shape: AutoIndex tracks the mix shifts and holds the "
              "best throughput; its management latency stays below the "
              "query-level Greedy pipeline\n");
  return 0;
}
