#include <chrono>
#include <cstdio>
#include "workload/tpcc.h"
#include "workload/workload.h"
int main() {
  autoindex::TpccConfig config;
  autoindex::Database db;
  autoindex::TpccWorkload::Populate(&db, config);
  db.Analyze();
  const auto trace = autoindex::TpccWorkload::Generate(config, 1200, 7);
  for (int rep = 0; rep < 3; ++rep) {
    const autoindex::RunMetrics m = autoindex::RunWorkload(&db, trace);
    std::printf("queries=%zu failed=%zu wall_ms=%.1f\n", m.queries, m.failed,
                m.wall_ms);
  }
  return 0;
}
