// Micro-benchmarks (google-benchmark) for the performance-critical
// substrate pieces: B+Tree operations, SQL parsing, fingerprinting, DNF
// rewriting, what-if estimation, and MCTS iteration throughput.

#include <benchmark/benchmark.h>

#include "core/benefit_estimator.h"
#include "core/mcts.h"
#include "core/query_template.h"
#include "engine/database.h"
#include "index/btree.h"
#include "sql/dnf.h"
#include "sql/fingerprint.h"
#include "sql/parser.h"
#include "util/random.h"

namespace autoindex {
namespace {

void BM_BTreeInsert(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    BTree tree(256, 256);
    Random rng(7);
    for (size_t i = 0; i < n; ++i) {
      tree.Insert({Value(static_cast<int64_t>(rng.Next() % 1000000))}, i);
    }
    benchmark::DoNotOptimize(tree.num_entries());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BTreeInsert)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_BTreePointLookup(benchmark::State& state) {
  BTree tree(256, 256);
  Random rng(7);
  const size_t n = 100000;
  for (size_t i = 0; i < n; ++i) {
    tree.Insert({Value(static_cast<int64_t>(i))}, i);
  }
  size_t key = 0;
  for (auto _ : state) {
    key = (key * 2654435761u + 1) % n;
    benchmark::DoNotOptimize(
        tree.PrefixLookup({Value(static_cast<int64_t>(key))}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreePointLookup);

void BM_BTreeRangeScan(benchmark::State& state) {
  BTree tree(256, 256);
  const size_t n = 100000;
  for (size_t i = 0; i < n; ++i) {
    tree.Insert({Value(static_cast<int64_t>(i))}, i);
  }
  const int64_t width = state.range(0);
  int64_t lo_v = 0;
  for (auto _ : state) {
    lo_v = (lo_v + 12345) % (n - width);
    Row lo{Value(lo_v)}, hi{Value(lo_v + width)};
    size_t count = 0;
    tree.Scan(&lo, true, &hi, true, [&](const Row&, RowId) {
      ++count;
      return true;
    });
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * width);
}
BENCHMARK(BM_BTreeRangeScan)->Arg(100)->Arg(10000);

void BM_ParseSelect(benchmark::State& state) {
  const std::string sql =
      "SELECT a, b, COUNT(*) FROM t1, t2 WHERE t1.x = t2.y AND a = 5 AND "
      "(b > 3 OR c IN (1, 2, 3)) GROUP BY a, b ORDER BY a DESC LIMIT 10";
  for (auto _ : state) {
    auto stmt = ParseSql(sql);
    benchmark::DoNotOptimize(stmt.ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ParseSelect);

void BM_Fingerprint(benchmark::State& state) {
  const std::string sql =
      "SELECT c_id, c_balance FROM customer WHERE c_w_id = 3 AND c_d_id = "
      "7 AND c_last = 'BARBARESE' ORDER BY c_first";
  for (auto _ : state) {
    benchmark::DoNotOptimize(FingerprintSql(sql));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Fingerprint);

void BM_TemplateObserve(benchmark::State& state) {
  TemplateStore store(5000);
  Random rng(3);
  for (auto _ : state) {
    const int c = static_cast<int>(rng.Uniform(1000000));
    benchmark::DoNotOptimize(store.Observe(
        "SELECT a FROM t WHERE b = " + std::to_string(c)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TemplateObserve);

void BM_DnfRewrite(benchmark::State& state) {
  auto stmt = ParseSql(
      "SELECT a FROM t WHERE (a = 1 OR b = 2) AND (c = 3 OR d = 4) AND "
      "(e = 5 OR f = 6)");
  const Expr& where = *stmt->select->where;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ToDnf(where));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DnfRewrite);

// Shared fixture state for estimator/MCTS benches.
struct WhatIfFixture {
  WhatIfFixture() {
    db.CreateTable("t", Schema({{"a", ValueType::kInt},
                                {"b", ValueType::kInt}}));
    std::vector<Row> rows;
    for (int i = 0; i < 50000; ++i) {
      rows.push_back({Value(int64_t(i)), Value(int64_t(i % 100))});
    }
    db.BulkInsert("t", std::move(rows)).ok();
    db.Analyze();
    auto parsed = ParseSql("SELECT b FROM t WHERE a = 123");
    stmt = std::make_unique<Statement>(std::move(*parsed));
  }
  Database db;
  std::unique_ptr<Statement> stmt;
};

void BM_WhatIfEstimate(benchmark::State& state) {
  static WhatIfFixture* fixture = new WhatIfFixture();
  IndexConfig config({IndexDef("t", {"a"})});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fixture->db.WhatIfCost(*fixture->stmt, config).Total());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WhatIfEstimate);

void BM_MctsIteration(benchmark::State& state) {
  static WhatIfFixture* fixture = new WhatIfFixture();
  IndexBenefitEstimator estimator(&fixture->db);
  TemplateStore store(100);
  QueryTemplate* t = store.Observe("SELECT b FROM t WHERE a = 123");
  t->frequency = 50.0;
  store.Observe("SELECT a FROM t WHERE b = 7")->frequency = 50.0;
  const WorkloadModel workload =
      WorkloadModel::FromTemplates(store.TemplatesByFrequency());
  const std::vector<IndexDef> candidates = {
      IndexDef("t", {"a"}), IndexDef("t", {"b"}), IndexDef("t", {"a", "b"})};
  const size_t iterations = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    MctsConfig config;
    config.iterations = iterations;
    config.patience = 0;
    MctsIndexSelector selector(&fixture->db, &estimator, config);
    benchmark::DoNotOptimize(
        selector.Run(IndexConfig(), candidates, workload).best_benefit);
  }
  state.SetItemsProcessed(state.iterations() * iterations);
}
BENCHMARK(BM_MctsIteration)->Arg(50)->Arg(200);

}  // namespace
}  // namespace autoindex

BENCHMARK_MAIN();
