// Reproduces Table III: example recommended indexes in the banking
// scenario with per-query cost before/after.
// Paper shape: individual recommended indexes cut the cost of their probe
// queries by anywhere from ~2x to ~100x (ind20: 59495 -> 7655).

#include "bench/bench_util.h"
#include "util/string_util.h"
#include "workload/banking.h"

using namespace autoindex;         // NOLINT
using namespace autoindex::bench;  // NOLINT

int main() {
  PrintHeader("Table III — Example recommended indexes (banking)");

  Database db;
  BankingConfig config;
  BankingWorkload::Populate(&db, config);

  AutoIndexConfig ai;
  ai.learn_cost_model = false;  // both methods share the static Sec.-V estimator (paper fairness)
  ai.mcts.iterations = 300;
  AutoIndexManager manager(&db, ai);
  ObserveWorkload(&manager, BankingWorkload::HybridService(config, 4000, 1));
  TuningResult tuning = manager.RunManagementRound(/*apply=*/false);

  std::printf("\n%-28s | %-16s | %-16s | %s\n", "index",
              "cost (no index)", "cost (with index)", "reduction");
  PrintRule();
  int shown = 0;
  for (const IndexDef& def : tuning.added) {
    if (shown >= 8) break;
    // A probe query exercising this index's leading column.
    const std::string probe = StrFormat(
        "SELECT amount FROM %s WHERE %s = 100", def.table.c_str(),
        def.columns[0].c_str());
    auto before = db.Execute(probe);
    if (!before.ok()) continue;
    const double cost_before = before->stats.ToCost(db.params()).Total();
    if (!db.CreateIndex(def).ok()) continue;
    auto after = db.Execute(probe);
    db.DropIndex(def.Key()).ok();
    if (!after.ok()) continue;
    const double cost_after = after->stats.ToCost(db.params()).Total();
    std::printf("%-28s | %16.3f | %16.3f | %.1f%%\n",
                def.DisplayName().c_str(), cost_before, cost_after,
                cost_before > 0
                    ? 100.0 * (cost_before - cost_after) / cost_before
                    : 0.0);
    ++shown;
  }
  if (shown == 0) {
    std::printf("(no indexes recommended — unexpected; check tuning)\n");
  }
  std::printf("\npaper shape: recommended indexes reduce their probe-query "
              "cost by large factors (up to ~99%%)\n");
  return 0;
}
