// Extension ablation (Sec. III "index type selection for the data
// partitioning scenarios"): global vs local indexes on a hash-partitioned
// table under two workload regimes.
//   - partition-bound lookups (WHERE region = ? AND k = ?): the local
//     index serves one shallow shard probe and is smaller;
//   - unbound lookups (WHERE k = ?): the local index pays one descent per
//     partition, the global index one taller descent.
// The bench prints measured costs for both kinds under both regimes plus
// what AutoIndex's search picks for each.

#include "bench/bench_util.h"
#include "util/string_util.h"

using namespace autoindex;         // NOLINT
using namespace autoindex::bench;  // NOLINT

namespace {

constexpr int kPartitions = 16;
constexpr int kRows = 80000;

void BuildTable(Database* db) {
  db->CreateTable("pt", Schema({{"region", ValueType::kInt},
                                {"k", ValueType::kInt},
                                {"v", ValueType::kInt}}));
  db->catalog().GetTable("pt")->SetPartitioning("region", kPartitions);
  std::vector<Row> rows;
  rows.reserve(kRows);
  for (int i = 0; i < kRows; ++i) {
    rows.push_back({Value(int64_t(i % 128)), Value(int64_t(i)),
                    Value(int64_t(i % 100))});
  }
  db->BulkInsert("pt", std::move(rows)).ok();
  db->Analyze();
}

std::vector<std::string> BoundWorkload(size_t n, uint64_t seed) {
  Random rng(seed);
  std::vector<std::string> out;
  for (size_t i = 0; i < n; ++i) {
    const int k = static_cast<int>(rng.Uniform(kRows));
    out.push_back(StrFormat(
        "SELECT v FROM pt WHERE region = %d AND k = %d", k % 128, k));
  }
  return out;
}

std::vector<std::string> UnboundWorkload(size_t n, uint64_t seed) {
  Random rng(seed);
  std::vector<std::string> out;
  for (size_t i = 0; i < n; ++i) {
    out.push_back(StrFormat("SELECT v FROM pt WHERE k = %d",
                            static_cast<int>(rng.Uniform(kRows))));
  }
  return out;
}

double MeasureWith(const IndexDef& def,
                   const std::vector<std::string>& workload,
                   size_t* index_bytes) {
  Database db;
  BuildTable(&db);
  db.CreateIndex(def).ok();
  *index_bytes = db.index_manager().TotalIndexBytes();
  return RunWorkload(&db, workload).total_cost;
}

}  // namespace

int main() {
  PrintHeader("Extension — global vs local index on a partitioned table");

  const IndexDef global_rk("pt", {"region", "k"});
  const IndexDef local_rk("pt", {"region", "k"}, IndexKind::kLocal);
  const IndexDef global_k("pt", {"k"});
  const IndexDef local_k("pt", {"k"}, IndexKind::kLocal);

  const auto bound = BoundWorkload(400, 1);
  const auto unbound = UnboundWorkload(400, 2);

  std::printf("\n%-34s %14s %12s\n", "index / workload", "measured cost",
              "index size");
  PrintRule();
  struct Case {
    const char* label;
    const IndexDef* def;
    const std::vector<std::string>* workload;
  };
  const Case cases[] = {
      {"global(region,k) / bound", &global_rk, &bound},
      {"local(region,k)  / bound", &local_rk, &bound},
      {"global(k)        / unbound", &global_k, &unbound},
      {"local(k)         / unbound", &local_k, &unbound},
  };
  for (const Case& c : cases) {
    size_t bytes = 0;
    const double cost = MeasureWith(*c.def, *c.workload, &bytes);
    std::printf("%-34s %14.1f %9.2f MiB\n", c.label, cost,
                bytes / 1048576.0);
  }

  // What does AutoIndex pick per regime?
  for (int regime = 0; regime < 2; ++regime) {
    Database db;
    BuildTable(&db);
    AutoIndexConfig ai;
  ai.learn_cost_model = false;  // both methods share the static Sec.-V estimator (paper fairness)
    ai.mcts.iterations = 200;
    AutoIndexManager manager(&db, ai);
    const auto& workload = regime == 0 ? bound : unbound;
    RunWorkloadObserved(&manager, workload);
    TuningResult tuning = manager.RunManagementRound();
    std::printf("\nAutoIndex on the %s workload chose:",
                regime == 0 ? "bound" : "unbound");
    for (const IndexDef& def : tuning.added) {
      std::printf(" %s", def.DisplayName().c_str());
    }
    if (tuning.added.empty()) std::printf(" (nothing)");
    std::printf("\n");
  }
  std::printf("\nexpected shape: local wins the partition-bound regime "
              "(pruned + smaller); global wins unbound point lookups\n");
  return 0;
}
