// Reproduces Table I: the indexes Greedy and AutoIndex add on top of the
// TPC-C1x Default configuration, with each index's cost reduction on the
// queries it serves.
// Paper shape: both pick the big (o_c_id, o_w_id, o_d_id) order-status
// index (~99% reduction on its query); only AutoIndex additionally keeps
// the lower-individual-benefit s_quality and (o_c_id, o_d_id)-style
// indexes whose combined effect pays off.

#include "bench/bench_util.h"
#include "util/string_util.h"
#include "workload/tpcc.h"

using namespace autoindex;         // NOLINT
using namespace autoindex::bench;  // NOLINT

namespace {

// Measured cost reduction of `def` on a probe query: executes with the
// current estate, then with `def` dropped, and reports the reduction.
double CostReductionPercent(Database* db, const IndexDef& def,
                            const std::string& probe_sql) {
  auto with = db->Execute(probe_sql);
  if (!with.ok()) return 0.0;
  const double cost_with = with->stats.ToCost(db->params()).Total();
  db->DropIndex(def.Key()).ok();
  auto without = db->Execute(probe_sql);
  db->CreateIndex(def).ok();
  if (!without.ok()) return 0.0;
  const double cost_without = without->stats.ToCost(db->params()).Total();
  if (cost_without <= 0.0) return 0.0;
  return 100.0 * (cost_without - cost_with) / cost_without;
}

// A representative query served by the index (matched on leading column).
std::string ProbeFor(const IndexDef& def, const TpccConfig& config) {
  auto one = TpccWorkload::Generate(config, 400, 31);
  for (const std::string& sql : one) {
    if (sql.rfind("SELECT", 0) != 0) continue;
    // Heuristic: the query mentions the leading index column in its WHERE.
    if (sql.find(def.columns[0] + " ") != std::string::npos ||
        sql.find(def.columns[0] + " =") != std::string::npos) {
      return sql;
    }
  }
  return one.empty() ? "" : one[0];
}

}  // namespace

int main() {
  PrintHeader("Table I — Indexes added beyond Default on TPC-C1x");
  TpccConfig config;
  config.warehouses = 1;
  const auto tuning = TpccWorkload::Generate(config, 500, 7);

  // --- Greedy ---
  Database greedy_db;
  TpccWorkload::Populate(&greedy_db, config);
  TpccWorkload::CreateDefaultIndexes(&greedy_db);
  double greedy_ms = 0.0;
  RunWorkload(&greedy_db, tuning);  // same warm-up as AutoIndex
  GreedyResult greedy = RunGreedyPipeline(&greedy_db, tuning, 0, &greedy_ms);
  ApplyGreedy(&greedy_db, greedy);

  // --- AutoIndex ---
  Database auto_db;
  TpccWorkload::Populate(&auto_db, config);
  TpccWorkload::CreateDefaultIndexes(&auto_db);
  AutoIndexConfig ai;
  ai.learn_cost_model = false;  // both methods share the static Sec.-V estimator (paper fairness)
  ai.mcts.iterations = 300;
  AutoIndexManager manager(&auto_db, ai);
  TuningResult auto_result;
  RunAutoIndexTuning(&manager, tuning, 3, &auto_result);

  std::printf("\n%-34s | %-34s | %s\n", "Greedy added", "AutoIndex added",
              "cost reduction (probe query)");
  PrintRule();
  // AutoIndex additions with measured per-index reduction.
  std::vector<IndexDef> auto_added;
  for (const BuiltIndex* index : auto_db.index_manager().AllIndexes()) {
    bool is_default = false;
    for (const IndexDef& d : TpccWorkload::DefaultIndexes()) {
      if (d == index->def()) is_default = true;
    }
    if (!is_default) auto_added.push_back(index->def());
  }
  const size_t rows = std::max(greedy.to_add.size(), auto_added.size());
  for (size_t i = 0; i < rows; ++i) {
    const std::string left =
        i < greedy.to_add.size() ? greedy.to_add[i].DisplayName() : "";
    std::string right, reduction;
    if (i < auto_added.size()) {
      right = auto_added[i].DisplayName();
      const std::string probe = ProbeFor(auto_added[i], config);
      reduction = StrFormat("%.1f%%",
                            CostReductionPercent(&auto_db, auto_added[i],
                                                 probe));
    }
    std::printf("%-34s | %-34s | %s\n", left.c_str(), right.c_str(),
                reduction.c_str());
  }
  std::printf("\nGreedy added %zu indexes; AutoIndex added %zu indexes\n",
              greedy.to_add.size(), auto_added.size());
  std::printf("paper shape: AutoIndex keeps extra low-individual-benefit "
              "indexes that pay off jointly\n");
  return 0;
}
