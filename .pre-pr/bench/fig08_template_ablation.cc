// Reproduces Figure 8: template-based vs query-based index management.
// Paper shape: templatization removes ~98.5% of the management overhead
// (candidate generation + selection) while the resulting workload
// performance is within ~0.1% of the query-level method.

#include <chrono>

#include "bench/bench_util.h"
#include "workload/tpcc.h"

using namespace autoindex;         // NOLINT
using namespace autoindex::bench;  // NOLINT

int main() {
  PrintHeader("Figure 8 — Template-based vs query-based index management");
  TpccConfig config;
  config.warehouses = 2;
  // A large repetitive stream — the regime where templates pay off.
  const auto tuning_queries = TpccWorkload::Generate(config, 4000, 7);
  const auto eval_queries = TpccWorkload::Generate(config, 800, 99);

  // --- Query-level method: parse & analyze every query individually,
  // then select greedily over the full candidate set. ---
  Database query_db;
  TpccWorkload::Populate(&query_db, config);
  TpccWorkload::CreateDefaultIndexes(&query_db);
  double query_ms = 0.0;
  double query_extract_ms = 0.0;
  size_t query_candidates = 0;
  GreedyResult query_sel =
      RunGreedyPipeline(&query_db, tuning_queries, 0, &query_ms,
                        &query_candidates, &query_extract_ms);
  ApplyGreedy(&query_db, query_sel);
  RunMetrics query_perf = RunWorkload(&query_db, eval_queries);

  // --- Template-based method (AutoIndex): observe into the template
  // store, generate candidates from templates only. ---
  Database tmpl_db;
  TpccWorkload::Populate(&tmpl_db, config);
  TpccWorkload::CreateDefaultIndexes(&tmpl_db);
  AutoIndexConfig ai;
  ai.learn_cost_model = false;  // both methods share the static Sec.-V estimator (paper fairness)
  ai.mcts.iterations = 250;
  AutoIndexManager manager(&tmpl_db, ai);
  // Template observation happens online while queries execute (the paper
  // reports <1% impact on the workload); management overhead is what the
  // tuning request itself costs.
  const auto observe_start = std::chrono::steady_clock::now();
  ObserveWorkload(&manager, tuning_queries);
  const auto observe_end = std::chrono::steady_clock::now();
  const double observe_ms =
      std::chrono::duration<double, std::milli>(observe_end - observe_start)
          .count();
  TuningResult tuning = manager.RunManagementRound();
  const double tmpl_ms = tuning.elapsed_ms;
  RunMetrics tmpl_perf = RunWorkload(&tmpl_db, eval_queries);

  std::printf("\n%-28s %14s %14s\n", "", "query-level", "template-based");
  PrintRule();
  // The paper's Fig. 8 compares the per-query analysis overhead (parse +
  // index-requirement extraction per statement vs. per template).
  std::printf("%-28s %11.1f ms %11.1f ms  (%.1f%% less)\n",
              "candidate generation", query_extract_ms,
              tuning.candidate_gen_ms,
              100.0 * (query_extract_ms - tuning.candidate_gen_ms) /
                  query_extract_ms);
  std::printf("%-28s %11.1f ms %11.1f ms\n", "index selection",
              query_ms - query_extract_ms, tuning.search_ms);
  std::printf("%-28s %11.1f ms %11.1f ms  (%.1f%% less)\n",
              "total management overhead", query_ms, tmpl_ms,
              100.0 * (query_ms - tmpl_ms) / query_ms);
  std::printf("%-28s %14s %11.1f ms  (amortized online)\n",
              "template collection", "-", observe_ms);
  std::printf("%-28s %14zu %14zu\n", "statements analyzed",
              tuning_queries.size(), tuning.templates_considered);
  std::printf("%-28s %14zu %14zu\n", "candidates considered",
              query_candidates, tuning.candidates_generated);
  std::printf("%-28s %14.1f %14.1f  (gap %.2f%%)\n",
              "workload cost after tuning", query_perf.total_cost,
              tmpl_perf.total_cost,
              100.0 * (tmpl_perf.total_cost - query_perf.total_cost) /
                  query_perf.total_cost);
  std::printf("\npaper shape: overhead drops by ~98%%; performance gap "
              "within a fraction of a percent\n");
  return 0;
}
