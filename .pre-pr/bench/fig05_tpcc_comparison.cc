// Reproduces Figure 5 (a)-(f): total latency and throughput on three
// TPC-C scales for Default, Greedy, and AutoIndex.
// Paper shape: AutoIndex < Greedy < Default in latency on every scale
// (e.g. TPC-C100x: AutoIndex ~25% lower latency / ~34% higher throughput
// than Default, ~5%/8% better than Greedy).
//
// Scales are shrunk uniformly (warehouses 1/3/8) so the largest run stays
// laptop-sized; relative table sizes and the transaction mix match TPC-C.

#include "bench/bench_util.h"
#include "workload/tpcc.h"

using namespace autoindex;         // NOLINT
using namespace autoindex::bench;  // NOLINT

namespace {

struct ScaleSpec {
  const char* label;
  int warehouses;
  size_t txns;
};

// Every method executes the same warm-up/tuning stream before measurement
// so table contents are identical when the evaluation stream runs.
MethodOutcome RunDefault(const TpccConfig& config, size_t txns) {
  Database db;
  TpccWorkload::Populate(&db, config);
  TpccWorkload::CreateDefaultIndexes(&db);
  MethodOutcome o;
  o.method = "Default";
  RunWorkload(&db, TpccWorkload::Generate(config, txns / 2, 7));
  db.Analyze();
  o.metrics = RunWorkload(&db, TpccWorkload::Generate(config, txns, 99));
  o.num_indexes = db.index_manager().num_indexes();
  o.index_bytes = db.index_manager().TotalIndexBytes();
  return o;
}

MethodOutcome RunGreedy(const TpccConfig& config, size_t txns) {
  Database db;
  TpccWorkload::Populate(&db, config);
  TpccWorkload::CreateDefaultIndexes(&db);
  MethodOutcome o;
  o.method = "Greedy";
  const auto tuning_queries = TpccWorkload::Generate(config, txns / 2, 7);
  RunWorkload(&db, tuning_queries);
  GreedyResult result =
      RunGreedyPipeline(&db, tuning_queries, 0, &o.tuning_ms);
  ApplyGreedy(&db, result);
  o.added = result.to_add;
  o.metrics = RunWorkload(&db, TpccWorkload::Generate(config, txns, 99));
  o.num_indexes = db.index_manager().num_indexes();
  o.index_bytes = db.index_manager().TotalIndexBytes();
  return o;
}

MethodOutcome RunAutoIndex(const TpccConfig& config, size_t txns) {
  Database db;
  TpccWorkload::Populate(&db, config);
  TpccWorkload::CreateDefaultIndexes(&db);
  MethodOutcome o;
  o.method = "AutoIndex";
  AutoIndexConfig ai;
  ai.learn_cost_model = false;  // both methods share the static Sec.-V estimator (paper fairness)
  ai.mcts.iterations = 250;
  AutoIndexManager manager(&db, ai);
  TuningResult last;
  o.tuning_ms = RunAutoIndexTuning(
      &manager, TpccWorkload::Generate(config, txns / 2, 7), 3, &last);
  o.added = last.added;
  o.metrics = RunWorkload(&db, TpccWorkload::Generate(config, txns, 99));
  o.num_indexes = db.index_manager().num_indexes();
  o.index_bytes = db.index_manager().TotalIndexBytes();
  return o;
}

}  // namespace

int main() {
  PrintHeader(
      "Figure 5 — TPC-C latency & throughput: Default vs Greedy vs "
      "AutoIndex");
  const ScaleSpec scales[] = {
      {"TPC-C1x", 1, 600},
      {"TPC-C10x", 3, 800},
      {"TPC-C100x", 8, 1000},
  };
  for (const ScaleSpec& scale : scales) {
    TpccConfig config;
    config.warehouses = scale.warehouses;
    std::printf("\n--- %s (%d warehouses, %zu transactions) ---\n",
                scale.label, scale.warehouses, scale.txns);
    MethodOutcome def = RunDefault(config, scale.txns);
    MethodOutcome greedy = RunGreedy(config, scale.txns);
    MethodOutcome autoindex = RunAutoIndex(config, scale.txns);
    PrintOutcomeRow(def);
    PrintOutcomeRow(greedy);
    PrintOutcomeRow(autoindex);
    std::printf("AutoIndex vs Default: latency %+.1f%%, throughput %+.1f%%\n",
                100.0 * (autoindex.metrics.total_cost - def.metrics.total_cost) /
                    def.metrics.total_cost,
                100.0 * (autoindex.metrics.Throughput() -
                         def.metrics.Throughput()) /
                    def.metrics.Throughput());
    std::printf("AutoIndex vs Greedy:  latency %+.1f%%, throughput %+.1f%%\n",
                100.0 *
                    (autoindex.metrics.total_cost - greedy.metrics.total_cost) /
                    greedy.metrics.total_cost,
                100.0 * (autoindex.metrics.Throughput() -
                         greedy.metrics.Throughput()) /
                    greedy.metrics.Throughput());
  }
  std::printf("\npaper shape: AutoIndex best on every scale; gap vs Default "
              "grows with scale\n");
  return 0;
}
