// Reproduces Figure 7: the number of TPC-DS queries whose execution cost
// is reduced by more than a set of thresholds, for Greedy and AutoIndex.
// Paper shape: AutoIndex optimizes substantially more queries by >10% than
// Greedy (44 vs 15 on the paper's 99-query set; proportionally similar on
// this repo's 25-template set).

#include "bench/bench_util.h"
#include "workload/tpcds.h"

using namespace autoindex;         // NOLINT
using namespace autoindex::bench;  // NOLINT

namespace {

std::vector<double> PerTemplateCosts(Database* db, const TpcdsConfig& config,
                                     int draws) {
  std::vector<double> costs(TpcdsWorkload::kNumQueryTemplates, 0.0);
  for (int d = 0; d < draws; ++d) {
    Random rng(2000 + d);
    for (int q = 0; q < TpcdsWorkload::kNumQueryTemplates; ++q) {
      auto r = db->Execute(TpcdsWorkload::Query(q, config, &rng));
      if (r.ok()) costs[q] += r->stats.ToCost(db->params()).Total();
    }
  }
  for (double& c : costs) c /= draws;
  return costs;
}

}  // namespace

int main() {
  PrintHeader("Figure 7 — # TPC-DS queries optimized beyond thresholds");
  TpcdsConfig config;
  const auto tuning_workload = TpcdsWorkload::Generate(config, 200, 7);
  constexpr int kDraws = 3;

  Database def_db;
  TpcdsWorkload::Populate(&def_db, config);
  TpcdsWorkload::CreateDefaultIndexes(&def_db);
  const auto base = PerTemplateCosts(&def_db, config, kDraws);

  // The paper's comparison runs under a resource limit. Self-calibrate:
  // let Greedy pick unconstrained first, then give BOTH methods 60% of
  // that footprint — the regime where top-k individual-benefit selection
  // packs big indexes and misses combinations.
  double probe_ms = 0.0;
  GreedyResult unlimited =
      RunGreedyPipeline(&def_db, tuning_workload, 0, &probe_ms);
  const size_t budget = std::max<size_t>(
      kPageSizeBytes,
      unlimited.config.TotalBytes(def_db.catalog()) * 6 / 10);
  std::printf("\nstorage budget (60%% of Greedy's unconstrained pick): "
              "%.1f MiB\n", budget / 1048576.0);

  Database greedy_db;
  TpcdsWorkload::Populate(&greedy_db, config);
  TpcdsWorkload::CreateDefaultIndexes(&greedy_db);
  double greedy_ms = 0.0;
  GreedyResult greedy =
      RunGreedyPipeline(&greedy_db, tuning_workload, budget, &greedy_ms);
  ApplyGreedy(&greedy_db, greedy);
  const auto greedy_costs = PerTemplateCosts(&greedy_db, config, kDraws);

  Database auto_db;
  TpcdsWorkload::Populate(&auto_db, config);
  TpcdsWorkload::CreateDefaultIndexes(&auto_db);
  AutoIndexConfig ai;
  ai.learn_cost_model = false;  // both methods share the static Sec.-V estimator (paper fairness)
  ai.mcts.iterations = 300;
  ai.storage_budget_bytes = budget;
  AutoIndexManager manager(&auto_db, ai);
  RunAutoIndexTuning(&manager, tuning_workload, 3);
  const auto auto_costs = PerTemplateCosts(&auto_db, config, kDraws);

  const double thresholds[] = {5.0, 10.0, 30.0, 50.0, 90.0};
  std::printf("\n%-18s %10s %10s\n", "reduction >", "Greedy", "AutoIndex");
  PrintRule();
  for (double th : thresholds) {
    int g = 0, a = 0;
    for (int q = 0; q < TpcdsWorkload::kNumQueryTemplates; ++q) {
      if (base[q] <= 0) continue;
      if (100.0 * (base[q] - greedy_costs[q]) / base[q] > th) ++g;
      if (100.0 * (base[q] - auto_costs[q]) / base[q] > th) ++a;
    }
    std::printf("%-17.0f%% %10d %10d\n", th, g, a);
  }
  std::printf("\n(total templates: %d)\n", TpcdsWorkload::kNumQueryTemplates);
  std::printf("paper shape: AutoIndex clears every threshold with ~2-3x "
              "more queries than Greedy\n");
  return 0;
}
