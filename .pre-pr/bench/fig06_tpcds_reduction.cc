// Reproduces Figure 6: per-query execution-time reduction on TPC-DS for
// AutoIndex and Greedy (relative to the Default dimension-key indexes).
// Paper shape: most queries improve under AutoIndex; AutoIndex's
// reductions dominate Greedy's because it explores index combinations.

#include "bench/bench_util.h"
#include "workload/tpcds.h"

using namespace autoindex;         // NOLINT
using namespace autoindex::bench;  // NOLINT

namespace {

// Per-template average cost over several parameter draws (averaging smooths
// the parameter randomness).
std::vector<double> PerTemplateCosts(Database* db, const TpcdsConfig& config,
                                     int draws) {
  std::vector<double> costs(TpcdsWorkload::kNumQueryTemplates, 0.0);
  for (int d = 0; d < draws; ++d) {
    Random rng(1000 + d);
    for (int q = 0; q < TpcdsWorkload::kNumQueryTemplates; ++q) {
      const std::string sql = TpcdsWorkload::Query(q, config, &rng);
      auto r = db->Execute(sql);
      if (r.ok()) costs[q] += r->stats.ToCost(db->params()).Total();
    }
  }
  for (double& c : costs) c /= draws;
  return costs;
}

}  // namespace

int main() {
  PrintHeader("Figure 6 — Execution cost reduction per TPC-DS query");
  TpcdsConfig config;
  const auto tuning_workload = TpcdsWorkload::Generate(config, 200, 7);
  constexpr int kDraws = 3;

  // Default.
  Database def_db;
  TpcdsWorkload::Populate(&def_db, config);
  TpcdsWorkload::CreateDefaultIndexes(&def_db);
  const auto base = PerTemplateCosts(&def_db, config, kDraws);

  // Greedy.
  Database greedy_db;
  TpcdsWorkload::Populate(&greedy_db, config);
  TpcdsWorkload::CreateDefaultIndexes(&greedy_db);
  double greedy_ms = 0.0;
  GreedyResult greedy =
      RunGreedyPipeline(&greedy_db, tuning_workload, 0, &greedy_ms);
  ApplyGreedy(&greedy_db, greedy);
  const auto greedy_costs = PerTemplateCosts(&greedy_db, config, kDraws);

  // AutoIndex.
  Database auto_db;
  TpcdsWorkload::Populate(&auto_db, config);
  TpcdsWorkload::CreateDefaultIndexes(&auto_db);
  AutoIndexConfig ai;
  ai.learn_cost_model = false;  // both methods share the static Sec.-V estimator (paper fairness)
  ai.mcts.iterations = 300;
  AutoIndexManager manager(&auto_db, ai);
  RunAutoIndexTuning(&manager, tuning_workload, 3);
  const auto auto_costs = PerTemplateCosts(&auto_db, config, kDraws);

  std::printf("\n%-6s %14s %18s %18s\n", "query", "default cost",
              "greedy reduction", "autoindex reduction");
  PrintRule();
  int auto_better = 0, auto_optimized = 0, greedy_optimized = 0;
  for (int q = 0; q < TpcdsWorkload::kNumQueryTemplates; ++q) {
    const double g_red =
        base[q] > 0 ? 100.0 * (base[q] - greedy_costs[q]) / base[q] : 0.0;
    const double a_red =
        base[q] > 0 ? 100.0 * (base[q] - auto_costs[q]) / base[q] : 0.0;
    std::printf("q%-5d %14.1f %17.1f%% %17.1f%%\n", q + 1, base[q], g_red,
                a_red);
    if (a_red > g_red + 0.05) ++auto_better;
    if (a_red > 10.0) ++auto_optimized;
    if (g_red > 10.0) ++greedy_optimized;
  }
  PrintRule();
  std::printf("queries with >10%% reduction: AutoIndex %d, Greedy %d "
              "(AutoIndex strictly better on %d)\n",
              auto_optimized, greedy_optimized, auto_better);
  std::printf("indexes built: AutoIndex %zu, Greedy %zu\n",
              auto_db.index_manager().num_indexes(),
              greedy_db.index_manager().num_indexes());
  std::printf("\npaper shape: AutoIndex optimizes more queries and by "
              "larger margins than Greedy\n");
  return 0;
}
