// Shared helpers for the per-figure/table reproduction benches. Each bench
// binary regenerates one table or figure of the paper (see DESIGN.md's
// experiment index) and prints the corresponding rows/series.

#pragma once

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "core/greedy.h"
#include "core/manager.h"
#include "workload/workload.h"

namespace autoindex {
namespace bench {

inline void PrintHeader(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
}

inline void PrintRule() {
  std::printf("----------------------------------------------------------------\n");
}

// Outcome of tuning a database with one method and replaying a workload.
struct MethodOutcome {
  std::string method;
  RunMetrics metrics;
  size_t num_indexes = 0;
  size_t index_bytes = 0;
  double tuning_ms = 0.0;
  std::vector<IndexDef> added;
  std::vector<IndexDef> removed;
};

// The paper's Greedy baseline pipeline: per-query candidate extraction
// (no templates) + top-k individual-benefit selection under the budget.
// Returns the selection and fills `tuning_ms` with the end-to-end
// management overhead (candidate extraction + selection).
inline GreedyResult RunGreedyPipeline(Database* db,
                                      const std::vector<std::string>& queries,
                                      size_t storage_budget_bytes,
                                      double* tuning_ms,
                                      size_t* num_candidates = nullptr,
                                      double* extraction_ms = nullptr) {
  const auto start = std::chrono::steady_clock::now();
  db->Analyze();
  IndexBenefitEstimator estimator(db);
  CandidateGenerator generator(db);

  // Query-level extraction: parse and analyze every query individually
  // (this is exactly the overhead the template store avoids, Fig. 8).
  std::vector<IndexDef> candidates;
  TemplateStore weights(100000);  // frequency bookkeeping only
  for (const std::string& sql : queries) {
    auto stmt = ParseSql(sql);
    if (!stmt.ok()) continue;
    weights.Observe(*stmt, sql);
    std::vector<IndexDef> per = generator.FromStatement(*stmt);
    candidates.insert(candidates.end(),
                      std::make_move_iterator(per.begin()),
                      std::make_move_iterator(per.end()));
  }
  candidates = MergeCandidates(std::move(candidates));
  const IndexConfig existing = db->CurrentConfig();
  std::vector<IndexDef> fresh;
  for (IndexDef& def : candidates) {
    if (!existing.Contains(def)) fresh.push_back(std::move(def));
  }
  if (num_candidates != nullptr) *num_candidates = fresh.size();
  if (extraction_ms != nullptr) {
    *extraction_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - start)
                         .count();
  }

  const WorkloadModel workload =
      WorkloadModel::FromTemplates(weights.TemplatesByFrequency());
  GreedyConfig config;
  config.storage_budget_bytes = storage_budget_bytes;
  GreedySelector greedy(db, &estimator, config);
  GreedyResult result = greedy.Run(existing, fresh, workload);
  const auto end = std::chrono::steady_clock::now();
  if (tuning_ms != nullptr) {
    *tuning_ms =
        std::chrono::duration<double, std::milli>(end - start).count();
  }
  return result;
}

// Applies a greedy selection to the database (creates the chosen indexes).
inline void ApplyGreedy(Database* db, const GreedyResult& result) {
  for (const IndexDef& def : result.to_add) {
    CheckOk(db->CreateIndex(def));
  }
}

// Runs AutoIndex end-to-end on a fresh manager: execute+observe the
// workload (so templates, usage counters, and training data accumulate),
// run `rounds` management rounds, return the tuning overhead.
inline double RunAutoIndexTuning(AutoIndexManager* manager,
                                 const std::vector<std::string>& queries,
                                 int rounds = 1,
                                 TuningResult* last = nullptr) {
  RunWorkloadObserved(manager, queries);
  double total_ms = 0.0;
  for (int r = 0; r < rounds; ++r) {
    TuningResult result = manager->RunManagementRound();
    total_ms += result.elapsed_ms;
    if (last != nullptr) *last = result;
    if (result.added.empty() && result.removed.empty()) break;
  }
  return total_ms;
}

inline void PrintOutcomeRow(const MethodOutcome& o) {
  std::printf("%-10s | latency %10.1f | throughput %8.3f | indexes %3zu | "
              "size %6.2f MiB | tuning %8.1f ms\n",
              o.method.c_str(), o.metrics.total_cost,
              o.metrics.Throughput(), o.num_indexes,
              o.index_bytes / 1048576.0, o.tuning_ms);
}

}  // namespace bench
}  // namespace autoindex
