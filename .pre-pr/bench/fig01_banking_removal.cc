// Reproduces Figure 1: index removal on the banking withdraw business.
// Paper result: 263 manual indexes -> 83% removed, ~70% storage saved,
// while throughput still improves (~+4%).
//
// The banking workload here is the synthetic stand-in described in
// DESIGN.md; the shape to check is: most of the manual estate goes away, a
// large majority of index storage is reclaimed, and throughput does NOT
// regress (it improves slightly because write queries stop maintaining
// dead indexes).

#include "bench/bench_util.h"
#include "workload/banking.h"

using namespace autoindex;         // NOLINT
using namespace autoindex::bench;  // NOLINT

int main() {
  PrintHeader("Figure 1 — Index removal on the banking withdraw business");

  Database db;
  BankingConfig config;
  BankingWorkload::Populate(&db, config);
  BankingWorkload::CreateManualIndexes(&db, config);

  const size_t before_count = db.index_manager().num_indexes();
  const size_t before_bytes = db.index_manager().TotalIndexBytes();
  std::printf("manual DBA estate: %zu indexes, %.1f MiB\n", before_count,
              before_bytes / 1048576.0);

  const auto withdraw = BankingWorkload::WithdrawalService(config, 4000, 1);

  AutoIndexConfig ai;
  ai.learn_cost_model = false;  // both methods share the static Sec.-V estimator (paper fairness)
  ai.mcts.iterations = 300;
  ai.mcts.max_actions_per_node = 96;
  AutoIndexManager manager(&db, ai);

  RunMetrics before = RunWorkloadObserved(&manager, withdraw);

  double tuning_ms = 0.0;
  for (int round = 0; round < 12; ++round) {
    TuningResult r = manager.RunManagementRound();
    tuning_ms += r.elapsed_ms;
    if (r.added.empty() && r.removed.empty()) break;
  }

  const size_t after_count = db.index_manager().num_indexes();
  const size_t after_bytes = db.index_manager().TotalIndexBytes();
  RunMetrics after =
      RunWorkload(&db, BankingWorkload::WithdrawalService(config, 4000, 2));

  PrintRule();
  std::printf("%-22s %12s %12s\n", "", "Default", "AutoIndex");
  std::printf("%-22s %12zu %12zu  (%.0f%% removed)\n", "# indexes",
              before_count, after_count,
              100.0 * (static_cast<double>(before_count) -
                       static_cast<double>(after_count)) /
                  static_cast<double>(before_count));
  std::printf("%-22s %9.1f MiB %9.1f MiB  (%.0f%% saved)\n", "index storage",
              before_bytes / 1048576.0, after_bytes / 1048576.0,
              100.0 * (static_cast<double>(before_bytes) -
                       static_cast<double>(after_bytes)) /
                  static_cast<double>(before_bytes));
  std::printf("%-22s %12.3f %12.3f  (%+.1f%%)\n", "withdraw throughput",
              before.Throughput(), after.Throughput(),
              100.0 * (after.Throughput() - before.Throughput()) /
                  before.Throughput());
  std::printf("%-22s %12s %9.0f ms\n", "management time", "-", tuning_ms);
  std::printf("\npaper shape: -83%% indexes, -70%% storage, throughput "
              "slightly UP (+4%%)\n");
  return 0;
}
