// Reproduces Figure 10: performance under different storage limits on the
// largest TPC-C configuration, plus a gamma-sweep ablation of the MCTS
// exploration constant (DESIGN.md extension).
// Paper shape: AutoIndex degrades gracefully as the budget shrinks and
// beats Greedy at every limit; occasionally a tighter budget finds a
// *better* configuration (small high-value indexes), which the paper also
// observes. Budgets are scaled to this repo's data sizes (the paper's
// {none,150M,100M,50M} on ~1 GB data ~= {none,12M,8M,4M} here).

#include "bench/bench_util.h"
#include "workload/tpcc.h"

using namespace autoindex;         // NOLINT
using namespace autoindex::bench;  // NOLINT

int main() {
  PrintHeader("Figure 10 — Performance under storage limits (TPC-C100x)");
  TpccConfig config;
  config.warehouses = 6;

  struct Budget {
    const char* label;
    size_t bytes;
  };
  const Budget budgets[] = {
      {"no limit", 0},
      {"6 MiB", 6u << 20},
      {"4 MiB", 4u << 20},
      {"2 MiB", 2u << 20},
  };

  std::printf("\n%-10s %14s %14s %16s %16s\n", "budget", "Greedy tput",
              "AutoIndex tput", "Greedy indexes", "AutoIndex indexes");
  PrintRule();
  for (const Budget& budget : budgets) {
    // Greedy under the budget.
    Database greedy_db;
    TpccWorkload::Populate(&greedy_db, config);
    TpccWorkload::CreateDefaultIndexes(&greedy_db);
    double greedy_ms = 0.0;
    const auto tuning_queries = TpccWorkload::Generate(config, 500, 7);
    RunWorkload(&greedy_db, tuning_queries);  // same warm-up as AutoIndex
    GreedyResult greedy_sel = RunGreedyPipeline(
        &greedy_db, tuning_queries, budget.bytes, &greedy_ms);
    ApplyGreedy(&greedy_db, greedy_sel);
    RunMetrics greedy_m =
        RunWorkload(&greedy_db, TpccWorkload::Generate(config, 700, 99));

    // AutoIndex under the budget.
    Database auto_db;
    TpccWorkload::Populate(&auto_db, config);
    TpccWorkload::CreateDefaultIndexes(&auto_db);
    AutoIndexConfig ai;
  ai.learn_cost_model = false;  // both methods share the static Sec.-V estimator (paper fairness)
    ai.mcts.iterations = 250;
    ai.storage_budget_bytes = budget.bytes;
    AutoIndexManager manager(&auto_db, ai);
    RunAutoIndexTuning(&manager, TpccWorkload::Generate(config, 500, 7), 2);
    RunMetrics auto_m =
        RunWorkload(&auto_db, TpccWorkload::Generate(config, 700, 99));

    std::printf("%-10s %14.3f %14.3f %10zu (%4.1fM) %10zu (%4.1fM)\n",
                budget.label, greedy_m.Throughput(), auto_m.Throughput(),
                greedy_db.index_manager().num_indexes(),
                greedy_db.index_manager().TotalIndexBytes() / 1048576.0,
                auto_db.index_manager().num_indexes(),
                auto_db.index_manager().TotalIndexBytes() / 1048576.0);
  }

  // Ablation: MCTS exploration constant under the tightest budget.
  std::printf("\nablation — gamma sweep at 4 MiB budget (AutoIndex tput):\n");
  for (double gamma : {0.1, 0.3, 0.7, 1.5}) {
    Database db;
    TpccWorkload::Populate(&db, config);
    TpccWorkload::CreateDefaultIndexes(&db);
    AutoIndexConfig ai;
  ai.learn_cost_model = false;  // both methods share the static Sec.-V estimator (paper fairness)
    ai.mcts.iterations = 250;
    ai.mcts.gamma = gamma;
    ai.storage_budget_bytes = 4u << 20;
    AutoIndexManager manager(&db, ai);
    RunAutoIndexTuning(&manager, TpccWorkload::Generate(config, 500, 7), 2);
    RunMetrics m = RunWorkload(&db, TpccWorkload::Generate(config, 700, 99));
    std::printf("  gamma %.1f -> throughput %.3f (%zu indexes)\n", gamma,
                m.Throughput(), db.index_manager().num_indexes());
  }
  std::printf("\npaper shape: AutoIndex above Greedy at every limit; "
              "graceful degradation as the budget shrinks\n");
  return 0;
}
