// Reproduces Table II: index creation for the banking hybrid services.
// Paper shape: starting from the manual estate, AutoIndex adds a modest
// number of indexes (+33 in the paper) at small storage cost (+1.27 GB on
// 24.4 GB) and improves both services — the OLAP summarization service a
// bit more (+10%) than the OLTP withdrawal flow (+6%).

#include "bench/bench_util.h"
#include "workload/banking.h"

using namespace autoindex;         // NOLINT
using namespace autoindex::bench;  // NOLINT

int main() {
  PrintHeader("Table II — Index creation in the banking scenario");

  Database db;
  BankingConfig config;
  BankingWorkload::Populate(&db, config);
  // Start from a trimmed manual estate (as if Fig. 1's removal already
  // ran): keep only the id indexes on hot tables.
  for (int t = 0; t < config.hot_tables; ++t) {
    db.CreateIndex(IndexDef(BankingWorkload::TableName(t), {"id"})).ok();
  }

  const size_t before_count = db.index_manager().num_indexes();
  const size_t before_bytes = db.index_manager().TotalIndexBytes();

  const auto withdraw_probe =
      BankingWorkload::WithdrawalService(config, 2500, 21);
  const auto summar_probe =
      BankingWorkload::SummarizationService(config, 800, 22);

  RunMetrics withdraw_before = RunWorkload(&db, withdraw_probe);
  RunMetrics summar_before = RunWorkload(&db, summar_probe);

  AutoIndexConfig ai;
  ai.learn_cost_model = false;  // both methods share the static Sec.-V estimator (paper fairness)
  ai.mcts.iterations = 300;
  ai.mcts.max_actions_per_node = 64;
  AutoIndexManager manager(&db, ai);
  ObserveWorkload(&manager, BankingWorkload::HybridService(config, 4000, 1));
  for (int round = 0; round < 6; ++round) {
    TuningResult r = manager.RunManagementRound();
    if (r.added.empty() && r.removed.empty()) break;
  }

  const size_t after_count = db.index_manager().num_indexes();
  const size_t after_bytes = db.index_manager().TotalIndexBytes();
  RunMetrics withdraw_after =
      RunWorkload(&db, BankingWorkload::WithdrawalService(config, 2500, 31));
  RunMetrics summar_after = RunWorkload(
      &db, BankingWorkload::SummarizationService(config, 800, 32));

  std::printf("\n%-34s %12s %12s\n", "", "Default", "AutoIndex");
  PrintRule();
  std::printf("%-34s %12zu %+12d\n", "# non-primary indexes", before_count,
              static_cast<int>(after_count) - static_cast<int>(before_count));
  std::printf("%-34s %9.2f MiB %+9.2f MiB\n", "index disk space",
              before_bytes / 1048576.0,
              (static_cast<double>(after_bytes) - before_bytes) / 1048576.0);
  std::printf("%-34s %12.3f %+11.1f%%\n", "summarization service (tput)",
              summar_before.Throughput(),
              100.0 * (summar_after.Throughput() - summar_before.Throughput()) /
                  summar_before.Throughput());
  std::printf("%-34s %12.3f %+11.1f%%\n", "withdrawal flow service (tput)",
              withdraw_before.Throughput(),
              100.0 *
                  (withdraw_after.Throughput() - withdraw_before.Throughput()) /
                  withdraw_before.Throughput());
  std::printf("\npaper shape: a few dozen added indexes, small storage "
              "delta, both services improve (OLAP a bit more)\n");
  return 0;
}
