// Request-scoped tracing tests (DESIGN.md §13): span-tree shape, the
// flight recorder's keep policy and ring semantics, wraparound
// attribution under 8 concurrent sessions, every TraceValidator check
// driven by a deliberate corruption drill, Chrome trace-event export
// structure, and the end-to-end acceptance path — a statement arriving
// over real loopback TCP while an online index build is in flight must
// yield a trace that decomposes the response time into network /
// admission / latch / operator / WAL spans. The multi-threaded cases
// also run under the TSan stage (ctest -L concurrency).

#include <sys/stat.h>

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "check/trace_validator.h"
#include "check/validator.h"
#include "core/manager.h"
#include "engine/database.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "persist/snapshot.h"
#include "persist/wal.h"
#include "util/random.h"

namespace autoindex {
namespace {

// Keep-everything policy: threshold 0 makes every submitted trace
// "slow", so tests see deterministic ring contents.
constexpr uint64_t kKeepAll = 0;
constexpr uint64_t kNever = 1ull << 40;

const obs::SpanRecord* FindSpan(const obs::TraceData& trace,
                                const std::string& name) {
  for (const obs::SpanRecord& span : trace.spans) {
    if (name == span.name) return &span;
  }
  return nullptr;
}

const obs::TraceData* FindTraceWithSpan(const obs::Tracer::Snapshot& snap,
                                        const std::string& root,
                                        const std::string& span) {
  for (const obs::TraceData& trace : snap.traces) {
    if (trace.spans.empty() || root != trace.spans[0].name) continue;
    if (FindSpan(trace, span) != nullptr) return &trace;
  }
  return nullptr;
}

// A minimal recursive-descent JSON syntax checker — enough to prove the
// Chrome export is structurally valid (balanced, quoted, delimited),
// without pulling a JSON library into the repo.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}
  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }
  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool String() {
    if (Peek() != '"') return false;
    for (++pos_; pos_ < s_.size(); ++pos_) {
      if (s_[pos_] == '\\') { ++pos_; continue; }
      if (s_[pos_] == '"') { ++pos_; return true; }
    }
    return false;
  }
  bool Number() {
    const size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool Literal(const char* word) {
    const size_t len = std::string(word).size();
    if (s_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }
  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

TEST(Tracing, SpanTreeShape) {
  obs::Tracer tracer(8);
  tracer.Configure(kKeepAll, 0.0);
  {
    obs::ScopedTrace trace("root", &tracer);
    EXPECT_TRUE(trace.owns());
    EXPECT_NE(trace.trace_id(), 0u);
    EXPECT_EQ(obs::CurrentTraceId(), trace.trace_id());
    obs::ScopedSpan a("a");
    a.SetAttr("rows", 7);
    { obs::ScopedSpan b("b"); }
  }
  const obs::Tracer::Snapshot snap = tracer.TakeSnapshot();
  ASSERT_EQ(snap.traces.size(), 1u);
  const obs::TraceData& t = snap.traces[0];
  ASSERT_EQ(t.spans.size(), 3u);
  EXPECT_STREQ(t.spans[0].name, "root");
  EXPECT_STREQ(t.spans[1].name, "a");
  EXPECT_STREQ(t.spans[2].name, "b");
  EXPECT_EQ(t.spans[0].parent, 0u);
  EXPECT_EQ(t.spans[1].parent, 1u);
  EXPECT_EQ(t.spans[2].parent, 2u);
  EXPECT_EQ(t.total_us, t.spans[0].duration_us);
  EXPECT_STREQ(t.spans[1].attr_name, "rows");
  EXPECT_EQ(t.spans[1].attr_value, 7);

  CheckReport report;
  TraceValidator::CheckSnapshot(snap, &report);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(report.structures_checked(), 1u);
}

TEST(Tracing, NestedTraceIsNoopAndOutermostWins) {
  obs::Tracer tracer(8);
  tracer.Configure(kKeepAll, 0.0);
  {
    obs::ScopedTrace outer("outer", &tracer);
    const uint64_t outer_id = outer.trace_id();
    {
      obs::ScopedTrace inner("inner", &tracer);
      EXPECT_FALSE(inner.owns());
      EXPECT_EQ(obs::CurrentTraceId(), outer_id);
      obs::ScopedSpan span("from-inner-scope");
    }
    // The nested scope must not have torn down the outer trace.
    EXPECT_EQ(obs::CurrentTraceId(), outer_id);
  }
  const obs::Tracer::Snapshot snap = tracer.TakeSnapshot();
  ASSERT_EQ(snap.traces.size(), 1u);
  EXPECT_STREQ(snap.traces[0].spans[0].name, "outer");
  EXPECT_NE(FindSpan(snap.traces[0], "from-inner-scope"), nullptr);
  EXPECT_EQ(snap.stats.started, 1u);
}

TEST(Tracing, CancelDiscardsAndKeepPolicyFilters) {
  obs::Tracer tracer(8);
  tracer.Configure(kKeepAll, 0.0);
  {
    obs::ScopedTrace trace("cancelled", &tracer);
    trace.Cancel();
  }
  // Threshold high + sampling off: submitted but dropped.
  tracer.Configure(kNever, 0.0);
  { obs::ScopedTrace trace("fast", &tracer); }
  // Threshold high + sampling 1.0: kept via the sampling coin.
  tracer.Configure(kNever, 1.0);
  { obs::ScopedTrace trace("sampled", &tracer); }

  const obs::Tracer::Snapshot snap = tracer.TakeSnapshot();
  EXPECT_EQ(snap.stats.started, 3u);
  EXPECT_EQ(snap.stats.cancelled, 1u);
  EXPECT_EQ(snap.stats.finished, 2u);
  EXPECT_EQ(snap.stats.sampled_out, 1u);
  EXPECT_EQ(snap.stats.recorded, 1u);
  ASSERT_EQ(snap.traces.size(), 1u);
  EXPECT_STREQ(snap.traces[0].spans[0].name, "sampled");
  EXPECT_TRUE(snap.traces[0].sampled);

  CheckReport report;
  TraceValidator::CheckSnapshot(snap, &report);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(Tracing, SpanCapDropsAndCounts) {
  obs::Tracer tracer(2);
  tracer.Configure(kKeepAll, 0.0);
  constexpr uint32_t kExtra = 10;
  {
    obs::ScopedTrace trace("capped", &tracer);
    for (uint32_t i = 0;
         i < obs::TraceContext::kMaxSpansPerTrace + kExtra; ++i) {
      obs::ScopedSpan span("filler");
    }
  }
  const obs::Tracer::Snapshot snap = tracer.TakeSnapshot();
  ASSERT_EQ(snap.traces.size(), 1u);
  EXPECT_EQ(snap.traces[0].spans.size(),
            size_t{obs::TraceContext::kMaxSpansPerTrace});
  // Root took one slot, so kExtra + 1 filler spans found the trace full.
  EXPECT_EQ(snap.traces[0].spans_dropped, kExtra + 1);
  EXPECT_EQ(snap.stats.spans_dropped, kExtra + 1);

  CheckReport report;
  TraceValidator::CheckSnapshot(snap, &report);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

// 8 sessions hammer a 4-slot ring. Every recorded trace must keep its
// own spans: the tag stamped on the root must equal the tag stamped on
// the child span of the *same* trace — wraparound overwrites whole
// slots, never splices spans across traces.
TEST(Tracing, RingWraparoundKeepsAttribution) {
  constexpr int kThreads = 8;
  constexpr int kTracesPerThread = 50;
  obs::Tracer tracer(4);
  tracer.Configure(kKeepAll, 0.0);

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t] {
      for (int i = 0; i < kTracesPerThread; ++i) {
        const int64_t tag = t * 1000 + i;
        obs::ScopedTrace trace("worker", &tracer);
        trace.SetRootAttr("tag", tag);
        obs::ScopedSpan span("inner");
        span.SetAttr("tag", tag);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const obs::Tracer::Snapshot snap = tracer.TakeSnapshot();
  EXPECT_EQ(snap.stats.started, uint64_t{kThreads * kTracesPerThread});
  EXPECT_EQ(snap.stats.recorded, uint64_t{kThreads * kTracesPerThread});
  ASSERT_EQ(snap.traces.size(), 4u);
  for (const obs::TraceData& trace : snap.traces) {
    ASSERT_EQ(trace.spans.size(), 2u);
    ASSERT_STREQ(trace.spans[0].attr_name, "tag");
    ASSERT_STREQ(trace.spans[1].attr_name, "tag");
    EXPECT_EQ(trace.spans[0].attr_value, trace.spans[1].attr_value)
        << "spans from different traces spliced into one ring slot";
  }
  CheckReport report;
  TraceValidator::CheckSnapshot(snap, &report);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

// Snapshots (and the exporter and validator on top of them) race 8
// recording sessions; every intermediate snapshot must already satisfy
// the ring invariants. TSan covers the memory-model side.
TEST(Tracing, SnapshotsRaceRecordingSessions) {
  constexpr int kThreads = 8;
  obs::Tracer tracer(16);
  tracer.Configure(kKeepAll, 0.0);
  std::atomic<bool> stop{false};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, &stop, t] {
      int64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        obs::ScopedTrace trace("worker", &tracer);
        trace.SetRootAttr("tag", t * 1000000 + i++);
        obs::ScopedSpan span("inner");
      }
    });
  }
  for (int round = 0; round < 50; ++round) {
    const obs::Tracer::Snapshot snap = tracer.TakeSnapshot();
    CheckReport report;
    TraceValidator::CheckSnapshot(snap, &report);
    EXPECT_TRUE(report.ok()) << report.ToString();
    const std::string json = obs::TracesToChromeJson(snap);
    EXPECT_TRUE(JsonChecker(json).Valid());
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : threads) t.join();
}

// --- TraceValidator corruption drills ---------------------------------

class TraceValidatorDrill : public ::testing::Test {
 protected:
  TraceValidatorDrill() : tracer_(4) {
    tracer_.Configure(kKeepAll, 0.0);
    for (int i = 0; i < 2; ++i) {
      obs::ScopedTrace trace("drill", &tracer_);
      obs::ScopedSpan span("child");
    }
  }

  // Runs the validator and returns the concatenated issue text ("" = ok).
  std::string Issues() {
    CheckReport report;
    TraceValidator::CheckSnapshot(tracer_.TakeSnapshot(), &report);
    std::string all;
    for (const CheckIssue& issue : report.issues()) {
      all += issue.detail + "\n";
    }
    return all;
  }

  obs::Tracer tracer_;
};

TEST_F(TraceValidatorDrill, CleanBaselinePasses) {
  EXPECT_EQ(Issues(), "");
}

TEST_F(TraceValidatorDrill, EmptySpanList) {
  tracer_.TestOnlyMutableTrace(0)->spans.clear();
  EXPECT_NE(Issues().find("no spans"), std::string::npos);
}

TEST_F(TraceValidatorDrill, NonDenseIds) {
  tracer_.TestOnlyMutableTrace(0)->spans[1].id = 5;
  EXPECT_NE(Issues().find("dense"), std::string::npos);
}

TEST_F(TraceValidatorDrill, RootWithParent) {
  tracer_.TestOnlyMutableTrace(0)->spans[0].parent = 1;
  EXPECT_NE(Issues().find("root span has parent"), std::string::npos);
}

TEST_F(TraceValidatorDrill, SecondRoot) {
  tracer_.TestOnlyMutableTrace(0)->spans[1].parent = 0;
  EXPECT_NE(Issues().find("second root"), std::string::npos);
}

TEST_F(TraceValidatorDrill, ParentNotBeforeChild) {
  tracer_.TestOnlyMutableTrace(0)->spans[1].parent = 2;
  EXPECT_NE(Issues().find("parents must start first"), std::string::npos);
}

TEST_F(TraceValidatorDrill, ChildEscapesParentInterval) {
  obs::TraceData* trace = tracer_.TestOnlyMutableTrace(0);
  trace->spans[1].start_us =
      trace->spans[0].start_us + trace->spans[0].duration_us + 1000;
  EXPECT_NE(Issues().find("escapes its parent"), std::string::npos);
}

TEST_F(TraceValidatorDrill, TotalDisagreesWithRoot) {
  obs::TraceData* trace = tracer_.TestOnlyMutableTrace(0);
  trace->total_us = trace->spans[0].duration_us + 5;
  EXPECT_NE(Issues().find("root span duration"), std::string::npos);
}

TEST_F(TraceValidatorDrill, DropsWithoutFullTrace) {
  tracer_.TestOnlyMutableTrace(0)->spans_dropped = 3;
  EXPECT_NE(Issues().find("drops only happen at the cap"),
            std::string::npos);
}

TEST_F(TraceValidatorDrill, FinishedImbalance) {
  tracer_.TestOnlyCorruptStats(1, 0, 0);
  EXPECT_NE(Issues().find("kept or dropped"), std::string::npos);
}

TEST_F(TraceValidatorDrill, RecordedDisagreesWithOccupancy) {
  tracer_.TestOnlyCorruptStats(0, 1, 0);
  EXPECT_NE(Issues().find("bookkeeping expects"), std::string::npos);
}

TEST_F(TraceValidatorDrill, SampledOutImbalance) {
  tracer_.TestOnlyCorruptStats(0, 0, 1);
  EXPECT_NE(Issues().find("kept or dropped"), std::string::npos);
}

TEST_F(TraceValidatorDrill, StartedBehindFinished) {
  // Inflate finished past started while keeping finished ==
  // recorded + sampled_out, so only the started check can fire.
  tracer_.TestOnlyCorruptStats(5, 0, 5);
  EXPECT_NE(Issues().find("cancelled"), std::string::npos);
}

// --- Engine + database integration ------------------------------------

TEST(Tracing, LocalStatementTracesAndChromeExport) {
  obs::Tracer& tracer = obs::Tracer::Default();
  tracer.ResetForTest();
  tracer.Configure(kKeepAll, 0.0);

  Database db;
  CheckOk(db.CreateTable("orders", Schema({{"id", ValueType::kInt},
                                           {"v", ValueType::kInt}}))
              .status());
  Random rng(7);
  std::vector<Row> rows;
  for (int i = 0; i < 500; ++i) {
    rows.push_back({Value(int64_t(i)), Value(int64_t(rng.Uniform(20)))});
  }
  CheckOk(db.BulkInsert("orders", std::move(rows)));
  db.Analyze();
  CheckOk(db.Execute("SELECT * FROM orders WHERE v = 3").status());

  const obs::Tracer::Snapshot snap = tracer.TakeSnapshot();
  const obs::TraceData* select =
      FindTraceWithSpan(snap, "statement", "plan");
  ASSERT_NE(select, nullptr);
  EXPECT_NE(FindSpan(*select, "parse"), nullptr);
  EXPECT_NE(FindSpan(*select, "latch.acquire"), nullptr);
  EXPECT_NE(FindSpan(*select, "engine.execute"), nullptr);
  EXPECT_NE(FindSpan(*select, "SeqScan"), nullptr);

  // The whole ring exports as structurally valid Chrome trace JSON.
  const std::string json = db.DumpTraces();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json.substr(0, 400);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"autoindex\""), std::string::npos);
  EXPECT_NE(json.find("\"ring_capacity\":"), std::string::npos);

  // And renders as a human-readable tree, newest first.
  const std::string tree = db.RenderTraceTrees(8);
  EXPECT_NE(tree.find("statement"), std::string::npos);
  EXPECT_NE(tree.find("parse"), std::string::npos);

  CheckReport report;
  TraceValidator::CheckSnapshot(snap, &report);
  EXPECT_TRUE(report.ok()) << report.ToString();
  tracer.ResetForTest();
}

TEST(Tracing, TuningRoundProducesPhaseSpans) {
  obs::Tracer& tracer = obs::Tracer::Default();
  tracer.ResetForTest();

  Database db;
  CheckOk(db.CreateTable("t", Schema({{"a", ValueType::kInt},
                                      {"b", ValueType::kInt}}))
              .status());
  std::vector<Row> rows;
  Random rng(11);
  for (int i = 0; i < 2000; ++i) {
    rows.push_back({Value(int64_t(i)), Value(int64_t(rng.Uniform(50)))});
  }
  CheckOk(db.BulkInsert("t", std::move(rows)));
  db.Analyze();

  AutoIndexConfig config;
  config.mcts.iterations = 30;
  config.trace_slow_us = 0;  // manager ctor configures the tracer
  AutoIndexManager manager(&db, config);
  for (int i = 0; i < 40; ++i) {
    CheckOk(manager.ExecuteAndObserve("SELECT a FROM t WHERE b = " +
                                      std::to_string(i % 50))
                .status());
  }
  manager.RunManagementRound();

  const obs::Tracer::Snapshot snap = tracer.TakeSnapshot();
  const obs::TraceData* round =
      FindTraceWithSpan(snap, "tuning.round", "tuning.candidate_gen");
  ASSERT_NE(round, nullptr);
  EXPECT_NE(FindSpan(*round, "tuning.search"), nullptr);
  CheckReport report;
  TraceValidator::CheckSnapshot(snap, &report);
  EXPECT_TRUE(report.ok()) << report.ToString();
  tracer.ResetForTest();
}

// --- The acceptance path: remote statement during an online build ------

TEST(Tracing, RemoteStatementDuringBuildDecomposesEndToEnd) {
  obs::Tracer& tracer = obs::Tracer::Default();
  tracer.ResetForTest();
  tracer.Configure(kKeepAll, 0.0);

  Database db;
  CheckOk(db.CreateTable("orders", Schema({{"id", ValueType::kInt},
                                           {"v", ValueType::kInt}}))
              .status());
  Random rng(23);
  std::vector<Row> rows;
  for (int i = 0; i < 4000; ++i) {
    rows.push_back({Value(int64_t(i)), Value(int64_t(rng.Uniform(40)))});
  }
  CheckOk(db.BulkInsert("orders", std::move(rows)));
  db.Analyze();

  // A WAL so the commit path (wal.append under wal.commit) shows up in
  // the write's trace.
  const std::string dir = std::string(::testing::TempDir()) + "/tracing_e2e";
  ::mkdir(dir.c_str(), 0755);
  std::remove(persist::WalPath(dir).c_str());
  StatusOr<std::unique_ptr<persist::Wal>> wal =
      persist::Wal::Create(persist::WalPath(dir), /*data_version=*/1);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  db.set_durability_log(wal->get());

  net::Server server(&db);
  ASSERT_TRUE(server.Start().ok());
  net::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  // Between the build's snapshot scan and its delta catch-up, drive one
  // INSERT and one SELECT through the wire. The hook runs latch-free on
  // the builder thread — which is also inside the index.build trace, so
  // CurrentTraceId() gives us a nonzero client id to propagate.
  std::atomic<int> fired{0};
  uint64_t propagated_client_id = 0;
  uint64_t insert_server_trace = 0;
  db.set_index_build_hook([&](Database::IndexBuildPhase phase) {
    if (phase != Database::IndexBuildPhase::kScanned) return;
    if (fired.fetch_add(1) != 0) return;
    propagated_client_id = obs::CurrentTraceId();
    StatusOr<net::QueryResult> ins =
        client.Query("INSERT INTO orders VALUES (90001, 7)");
    ASSERT_TRUE(ins.ok()) << ins.status().ToString();
    EXPECT_NE(ins->server_trace_id, 0u);
    EXPECT_GT(ins->server_span_count, 0u);
    insert_server_trace = ins->server_trace_id;
    StatusOr<net::QueryResult> sel =
        client.Query("SELECT * FROM orders WHERE v = 3");
    ASSERT_TRUE(sel.ok()) << sel.status().ToString();
  });
  ASSERT_TRUE(db.CreateIndex(IndexDef("orders", {"v"})).ok());
  db.set_index_build_hook(nullptr);
  ASSERT_GE(fired.load(), 1);
  client.Close();
  server.Stop();

  const obs::Tracer::Snapshot snap = tracer.TakeSnapshot();
  CheckReport report;
  TraceValidator::CheckSnapshot(snap, &report);
  EXPECT_TRUE(report.ok()) << report.ToString();

  // The INSERT's server-side trace, found by the propagated identity.
  const obs::TraceData* insert_trace = nullptr;
  for (const obs::TraceData& trace : snap.traces) {
    if (trace.trace_id == insert_server_trace) insert_trace = &trace;
  }
  ASSERT_NE(insert_trace, nullptr);
  ASSERT_FALSE(insert_trace->spans.empty());
  EXPECT_STREQ(insert_trace->spans[0].name, "net.request");
  EXPECT_NE(propagated_client_id, 0u);
  EXPECT_EQ(insert_trace->client_trace_id, propagated_client_id);

  // Decomposition: the root's direct children (net.recv, net.admit,
  // net.execute, net.send) must account for the response time — their
  // durations sum to the root's, minus only inter-span bookkeeping.
  uint64_t child_sum = 0;
  int direct_children = 0;
  for (const obs::SpanRecord& span : insert_trace->spans) {
    if (span.parent == 1) {
      child_sum += span.duration_us;
      ++direct_children;
    }
  }
  EXPECT_EQ(direct_children, 4);
  EXPECT_NE(FindSpan(*insert_trace, "net.recv"), nullptr);
  EXPECT_NE(FindSpan(*insert_trace, "net.admit"), nullptr);
  EXPECT_NE(FindSpan(*insert_trace, "net.execute"), nullptr);
  EXPECT_NE(FindSpan(*insert_trace, "net.send"), nullptr);
  EXPECT_LE(child_sum, insert_trace->total_us);
  EXPECT_LE(insert_trace->total_us - child_sum, 20'000u)
      << "untraced gap too large to call this a decomposition";

  // Inside net.execute: the session/database pipeline, down to the WAL.
  EXPECT_NE(FindSpan(*insert_trace, "parse"), nullptr);
  EXPECT_NE(FindSpan(*insert_trace, "latch.acquire"), nullptr);
  EXPECT_NE(FindSpan(*insert_trace, "engine.execute"), nullptr);
  EXPECT_NE(FindSpan(*insert_trace, "wal.commit"), nullptr);
  EXPECT_NE(FindSpan(*insert_trace, "wal.append"), nullptr);

  // The SELECT that raced the build decomposes down to its operators.
  const obs::TraceData* select_trace =
      FindTraceWithSpan(snap, "net.request", "SeqScan");
  ASSERT_NE(select_trace, nullptr);
  EXPECT_NE(FindSpan(*select_trace, "plan"), nullptr);

  // And the build itself produced a phase-decomposed trace.
  const obs::TraceData* build =
      FindTraceWithSpan(snap, "index.build", "build.scan");
  ASSERT_NE(build, nullptr);
  EXPECT_NE(FindSpan(*build, "build.register"), nullptr);
  EXPECT_NE(FindSpan(*build, "build.catchup"), nullptr);
  EXPECT_NE(FindSpan(*build, "build.publish"), nullptr);

  db.set_durability_log(nullptr);
  std::remove(persist::WalPath(dir).c_str());
  tracer.ResetForTest();
}

// --- Build identity + uptime gauges (DESIGN.md §11) --------------------

TEST(Tracing, BuildInfoAndUptimeExported) {
  Database db;
  const std::string text = db.RenderMetricsText();
  EXPECT_NE(text.find("# TYPE autoindex_build_info gauge"),
            std::string::npos);
  EXPECT_NE(text.find("autoindex_build_info{version=\""), std::string::npos);
  EXPECT_NE(text.find("git_hash=\""), std::string::npos);
  EXPECT_NE(text.find("sanitizer=\""), std::string::npos);
  EXPECT_NE(text.find("} 1\n"), std::string::npos);
  EXPECT_NE(text.find("autoindex_uptime_seconds"), std::string::npos);
  // The labels ride only on the sample line — the TYPE line stays bare.
  EXPECT_EQ(text.find("# TYPE autoindex_build_info{"), std::string::npos);
}

}  // namespace
}  // namespace autoindex
