// Server integration tests (DESIGN.md §12), all over real loopback TCP:
// concurrent remote clients must see byte-identical results to
// in-process execution, admission limits must shed with explicit kBusy
// (never hang or queue unboundedly), idle/statement timeouts must fire,
// the graceful drain must lose no admitted statement, and the handshake
// must refuse a protocol-version mismatch. Runs under the TSan stage
// (ctest -L concurrency): every thread here races against the server's
// accept loop and worker pool by design.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/database.h"
#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"
#include "util/random.h"

namespace autoindex {
namespace net {
namespace {

constexpr int kNumClients = 4;

// One private table per client so the concurrent differential replay is
// deterministic: no client's statements touch another's table, and the
// trace is pure SELECT, so remote results must equal the in-process
// results computed before the server ever started.
void PopulatePrivateTables(Database* db) {
  for (int t = 0; t < kNumClients; ++t) {
    const std::string name = "t" + std::to_string(t);
    CheckOk(db->CreateTable(name, Schema({{"id", ValueType::kInt},
                                          {"v", ValueType::kInt},
                                          {"w", ValueType::kDouble}}))
                .status());
    Random rng(100 + t);
    std::vector<Row> rows;
    for (int i = 0; i < 400; ++i) {
      rows.push_back({Value(int64_t(i)), Value(int64_t(rng.Uniform(40))),
                      Value(rng.NextDouble() * 10.0)});
    }
    CheckOk(db->BulkInsert(name, std::move(rows)));
  }
  db->Analyze();
}

std::vector<std::string> ClientTrace(int client) {
  const std::string t = "t" + std::to_string(client);
  std::vector<std::string> trace;
  for (int k = 0; k < 40; ++k) {
    trace.push_back("SELECT * FROM " + t + " WHERE v = " +
                    std::to_string(k));
    trace.push_back("SELECT * FROM " + t + " WHERE v >= " +
                    std::to_string(k) + " AND v <= " + std::to_string(k + 3));
  }
  return trace;
}

TEST(NetServer, ConcurrentRemoteClientsMatchInProcess) {
  Database db;
  PopulatePrivateTables(&db);

  // Ground truth first, in-process, single-threaded.
  std::vector<std::vector<std::vector<Row>>> expected(kNumClients);
  for (int c = 0; c < kNumClients; ++c) {
    for (const std::string& sql : ClientTrace(c)) {
      StatusOr<ExecResult> r = db.Execute(sql);
      ASSERT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
      expected[c].push_back(r->rows);
    }
  }

  Server server(&db);
  ASSERT_TRUE(server.Start().ok());

  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kNumClients; ++c) {
    threads.emplace_back([&, c] {
      Client client;
      if (!client.Connect("127.0.0.1", server.port()).ok()) {
        failures.fetch_add(1000);
        return;
      }
      const std::vector<std::string> trace = ClientTrace(c);
      for (size_t q = 0; q < trace.size(); ++q) {
        StatusOr<QueryResult> r = client.Query(trace[q]);
        if (!r.ok()) {
          failures.fetch_add(1);
          continue;
        }
        const std::vector<Row>& want = expected[c][q];
        bool same = r->rows.size() == want.size();
        for (size_t i = 0; same && i < want.size(); ++i) {
          same = CompareRows(r->rows[i], want[i]) == 0;
        }
        if (!same) mismatches.fetch_add(1);
      }
      client.Close();
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);

  server.Stop();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.connections_total, static_cast<uint64_t>(kNumClients));
  EXPECT_EQ(stats.requests_started, stats.responses_sent);
  EXPECT_EQ(server.open_connections(), 0u);

  // The net.* metrics series must have moved (process-global registry).
  uint64_t requests = 0, connections = 0;
  for (const auto& m : db.MetricsSnapshot("net.")) {
    if (m.name == "net.requests_total") requests = m.counter;
    if (m.name == "net.connections_total") connections = m.counter;
  }
  EXPECT_GT(requests, 0u);
  EXPECT_GT(connections, 0u);
}

TEST(NetServer, ConnectionCapShedsWithBusy) {
  Database db;
  ServerConfig config;
  config.max_connections = 2;
  Server server(&db, config);
  ASSERT_TRUE(server.Start().ok());

  Client a, b, c;
  ASSERT_TRUE(a.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(b.Connect("127.0.0.1", server.port()).ok());
  const Status shed = c.Connect("127.0.0.1", server.port());
  EXPECT_FALSE(shed.ok());
  EXPECT_TRUE(IsServerBusy(shed)) << shed.ToString();

  a.Close();
  b.Close();
  server.Stop();
  EXPECT_GE(server.stats().connections_rejected, 1u);
  EXPECT_GE(server.stats().busy_rejections, 1u);
}

TEST(NetServer, InflightCapShedsWithBusy) {
  Database db;
  CheckOk(db.CreateTable("t", Schema({{"id", ValueType::kInt}})).status());
  CheckOk(db.BulkInsert("t", {{Value(int64_t(1))}}));

  ServerConfig config;
  config.max_inflight_statements = 1;
  Server server(&db, config);

  // The hook runs with the statement's in-flight slot held: block the
  // first admitted statement until the test has observed the shed.
  std::atomic<bool> first{true};
  std::atomic<bool> hook_entered{false};
  std::atomic<bool> release{false};
  server.set_statement_hook([&] {
    if (first.exchange(false)) {
      hook_entered.store(true);
      while (!release.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  });
  ASSERT_TRUE(server.Start().ok());

  Client blocked;
  ASSERT_TRUE(blocked.Connect("127.0.0.1", server.port()).ok());
  std::thread holder([&] {
    // Holds the only in-flight slot until `release`.
    blocked.Query("SELECT * FROM t").ok();
  });
  while (!hook_entered.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  Client shed;
  ASSERT_TRUE(shed.Connect("127.0.0.1", server.port()).ok());
  StatusOr<QueryResult> r = shed.Query("SELECT * FROM t");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(IsServerBusy(r.status())) << r.status().ToString();
  // The shed is non-fatal: once the slot frees up, the same connection
  // executes fine.
  release.store(true);
  holder.join();
  StatusOr<QueryResult> retry = shed.Query("SELECT * FROM t");
  EXPECT_TRUE(retry.ok()) << retry.status().ToString();

  blocked.Close();
  shed.Close();
  server.Stop();
  EXPECT_GE(server.stats().busy_rejections, 1u);
  EXPECT_EQ(server.stats().requests_started,
            server.stats().responses_sent);
}

TEST(NetServer, IdleConnectionsDisconnected) {
  Database db;
  ServerConfig config;
  config.idle_timeout_ms = 50;
  Server server(&db, config);
  ASSERT_TRUE(server.Start().ok());

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  // Exceed the idle limit, then try to use the connection: the server
  // has already closed it (with a courtesy Error frame).
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  const Status ping = client.Ping();
  EXPECT_FALSE(ping.ok());

  server.Stop();
  EXPECT_GE(server.stats().idle_disconnects, 1u);
}

TEST(NetServer, StatementTimeoutReturnsDeadlineExceeded) {
  Database db;
  CheckOk(db.CreateTable("t", Schema({{"id", ValueType::kInt}})).status());
  std::vector<Row> rows;
  for (int i = 0; i < 5000; ++i) rows.push_back({Value(int64_t(i))});
  CheckOk(db.BulkInsert("t", std::move(rows)));
  db.Analyze();

  ServerConfig config;
  config.statement_timeout_us = 1;  // every statement overruns
  Server server(&db, config);
  ASSERT_TRUE(server.Start().ok());

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  StatusOr<QueryResult> r = client.Query("SELECT * FROM t WHERE id >= 0");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange)
      << r.status().ToString();
  // Post-hoc deadline: the connection survives; the next statement runs
  // (and times out again) on the same session.
  StatusOr<QueryResult> again = client.Query("SELECT * FROM t WHERE id = 1");
  EXPECT_FALSE(again.ok());
  EXPECT_TRUE(client.connected());

  client.Close();
  server.Stop();
  EXPECT_GE(server.stats().statement_timeouts, 2u);
  EXPECT_EQ(server.stats().requests_started,
            server.stats().responses_sent);
}

TEST(NetServer, GracefulDrainUnderLoadLosesNothing) {
  Database db;
  PopulatePrivateTables(&db);
  Server server(&db);
  ASSERT_TRUE(server.Start().ok());

  // Clients hammer the server until their connection dies; the drain
  // begins mid-load. Every response that arrives after RequestShutdown
  // proves in-flight statements were finished, not dropped.
  std::atomic<uint64_t> ok_replies{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kNumClients; ++c) {
    threads.emplace_back([&, c] {
      Client client;
      if (!client.Connect("127.0.0.1", server.port()).ok()) return;
      const std::vector<std::string> trace = ClientTrace(c);
      for (int round = 0; round < 200 && client.connected(); ++round) {
        StatusOr<QueryResult> r = client.Query(trace[round % trace.size()]);
        if (r.ok()) ok_replies.fetch_add(1);
      }
      client.Close();
    });
  }
  // Let the load get going, then pull the plug.
  while (ok_replies.load() < 20) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.RequestShutdown();
  server.WaitUntilStopped();
  for (std::thread& t : threads) t.join();

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.requests_started, stats.responses_sent)
      << "drain dropped an admitted statement";
  EXPECT_EQ(server.open_connections(), 0u);
  EXPECT_GE(ok_replies.load(), 20u);

  // New connections are refused once draining.
  Client late;
  EXPECT_FALSE(late.Connect("127.0.0.1", server.port()).ok());
}

TEST(NetServer, RemoteMetricsScrape) {
  Database db;
  CheckOk(db.CreateTable("t", Schema({{"id", ValueType::kInt}})).status());
  CheckOk(db.BulkInsert("t", {{Value(int64_t(1))}}));
  Server server(&db);
  ASSERT_TRUE(server.Start().ok());

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  // Run one statement so the exec-path series exist before the scrape.
  ASSERT_TRUE(client.Query("SELECT * FROM t").ok());

  // Unfiltered scrape: full Prometheus exposition, including the static
  // build-info gauge and at least one series the statement just moved.
  StatusOr<std::string> all = client.Metrics();
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  EXPECT_NE(all->find("autoindex_build_info{"), std::string::npos);
  EXPECT_NE(all->find("autoindex_uptime_seconds"), std::string::npos);
  EXPECT_NE(all->find("net_requests_total"), std::string::npos);

  // Prefix filter matches the local `\metrics <prefix>` semantics: it
  // selects on registry names ("net."), not rendered Prometheus names.
  StatusOr<std::string> net_only = client.Metrics("net.");
  ASSERT_TRUE(net_only.ok()) << net_only.status().ToString();
  EXPECT_NE(net_only->find("net_requests_total"), std::string::npos);
  EXPECT_EQ(net_only->find("autoindex_uptime_seconds"), std::string::npos);

  // A metrics scrape is not a statement: it must not consume an
  // in-flight slot or count toward request/response accounting drift.
  client.Close();
  server.Stop();
  EXPECT_EQ(server.stats().requests_started,
            server.stats().responses_sent);
}

TEST(NetServer, VersionMismatchRefused) {
  Database db;
  Server server(&db);
  ASSERT_TRUE(server.Start().ok());

  StatusOr<Socket> sock = Socket::ConnectTcp("127.0.0.1", server.port(),
                                             /*timeout_ms=*/2000);
  ASSERT_TRUE(sock.ok()) << sock.status().ToString();
  Message hello = Message::Hello();
  hello.protocol_version = 99;
  ASSERT_TRUE(SendFrame(&*sock, hello, /*timeout_ms=*/2000).ok());
  Message reply;
  ASSERT_TRUE(ReadFrame(&*sock, &reply, /*timeout_ms=*/2000).ok());
  EXPECT_EQ(reply.type, MessageType::kError);

  // The Client wrapper surfaces the same refusal as a clean Status.
  Client client;
  const Status direct = client.Connect("127.0.0.1", server.port());
  EXPECT_TRUE(direct.ok());  // correct version: fine
  client.Close();
  server.Stop();
}

}  // namespace
}  // namespace net
}  // namespace autoindex
