// Concurrency layer: LatchManager semantics, the LatchValidator audit,
// session isolation, a readers+writers+tuning stress run (the test the
// TSan stage of scripts/check.sh gates on), regression tests for
// single-thread bugs (LIMIT draining its child, the stale
// benefit-estimator cost memo, SUM/AVG over strings), and TSan-gated
// regressions for the lock-discipline violations the thread-safety
// annotation sweep surfaced (unguarded estimator model, MCTS budget knob,
// durability-log pointer).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "check/latch_validator.h"
#include "check/validator.h"
#include "core/benefit_estimator.h"
#include "core/manager.h"
#include "core/mcts.h"
#include "engine/database.h"
#include "engine/durability.h"
#include "engine/session.h"
#include "storage/latch_manager.h"

namespace autoindex {
namespace {

using LatchMode = LatchManager::LatchMode;

// --- LatchManager semantics ---------------------------------------------

TEST(LatchManagerTest, SharedLatchesAdmitConcurrentReaders) {
  LatchManager latches;
  LatchManager::Guard main_guard = latches.AcquireShared({"t"});
  std::atomic<bool> acquired{false};
  std::thread reader([&] {
    LatchManager::Guard g = latches.AcquireShared({"t"});
    acquired.store(true);
  });
  reader.join();
  EXPECT_TRUE(acquired.load());
  EXPECT_EQ(latches.total_acquisitions(), 2u);
}

TEST(LatchManagerTest, ExclusiveLatchBlocksReadersUntilRelease) {
  LatchManager latches;
  LatchManager::Guard writer = latches.AcquireExclusive("t");
  std::atomic<bool> acquired{false};
  std::thread reader([&] {
    LatchManager::Guard g = latches.AcquireShared({"t"});
    acquired.store(true);
  });
  // The reader must park behind the writer.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(acquired.load());
  writer.Release();
  reader.join();
  EXPECT_TRUE(acquired.load());
}

TEST(LatchManagerTest, WaitingWriterBlocksNewReaders) {
  LatchManager latches;
  LatchManager::Guard reader = latches.AcquireShared({"t"});
  std::atomic<bool> writer_in{false};
  std::atomic<bool> late_reader_in{false};
  std::thread writer([&] {
    LatchManager::Guard g = latches.AcquireExclusive("t");
    writer_in.store(true);
    g.Release();
  });
  // Wait until the writer is parked (waiting_writers visible in the
  // snapshot), then start a reader that must queue behind it.
  for (int i = 0; i < 1000; ++i) {
    const auto snap = latches.Snapshot();
    if (!snap.latches.empty() && snap.latches[0].waiting_writers > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::thread late_reader([&] {
    LatchManager::Guard g = latches.AcquireShared({"t"});
    late_reader_in.store(true);
    // Writer preference: by the time a new reader gets in, the waiting
    // writer must have had its turn.
    EXPECT_TRUE(writer_in.load());
  });
  EXPECT_FALSE(late_reader_in.load());
  reader.Release();
  writer.join();
  late_reader.join();
  EXPECT_TRUE(late_reader_in.load());
}

TEST(LatchManagerTest, NestedReacquisitionIsANoop) {
  LatchManager latches;
  LatchManager::Guard outer = latches.AcquireShared({"t"});
  EXPECT_EQ(outer.num_held(), 1u);
  // Same thread, same table: recorded no-op (the lazy-stats-under-latch
  // path), so releasing the inner guard must not drop the outer hold.
  LatchManager::Guard inner = latches.AcquireShared({"t"});
  EXPECT_EQ(inner.num_held(), 0u);
  inner.Release();
  const auto snap = latches.Snapshot();
  ASSERT_EQ(snap.latches.size(), 1u);
  EXPECT_EQ(snap.latches[0].readers, 1);
}

TEST(LatchManagerTest, MultiAcquireSortsAndCoalesces) {
  LatchManager latches;
  LatchManager::Guard g = latches.Acquire({{"zeta", LatchMode::kShared},
                                           {"Alpha", LatchMode::kShared},
                                           {"mid", LatchMode::kExclusive},
                                           {"alpha", LatchMode::kExclusive}});
  // "Alpha"+"alpha" coalesce (case-insensitive) to one exclusive hold.
  EXPECT_EQ(g.num_held(), 3u);
  const auto snap = latches.Snapshot();
  ASSERT_EQ(snap.threads.size(), 1u);
  const auto& held = snap.threads[0].held;
  ASSERT_EQ(held.size(), 3u);
  EXPECT_EQ(held[0].first, "alpha");
  EXPECT_EQ(held[0].second, LatchMode::kExclusive);
  EXPECT_EQ(held[1].first, "mid");
  EXPECT_EQ(held[2].first, "zeta");
  g.Release();
  EXPECT_TRUE(latches.Snapshot().latches.empty());
}

// --- LatchValidator ------------------------------------------------------

CheckReport RunLatchValidator(const LatchManager& latches) {
  CheckContext ctx;
  ctx.latches = &latches;
  CheckReport report;
  LatchValidator().Validate(ctx, &report);
  return report;
}

TEST(LatchValidatorTest, CleanStateAndHeldLatchesPass) {
  LatchManager latches;
  EXPECT_TRUE(RunLatchValidator(latches).ok());
  LatchManager::Guard g =
      latches.Acquire({{"a", LatchMode::kShared}, {"b", LatchMode::kExclusive}});
  const CheckReport held = RunLatchValidator(latches);
  EXPECT_TRUE(held.ok()) << held.ToString();
  EXPECT_GT(held.structures_checked(), 0u);
}

TEST(LatchValidatorTest, PhantomReaderIsCaught) {
  LatchManager latches;
  // A reader count with no thread recording the hold — exactly the leak
  // shape a missed Guard::Release would produce.
  latches.TestOnlyAddPhantomReader("t");
  const CheckReport report = RunLatchValidator(latches);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.ToString().find("leak or double-release"),
            std::string::npos)
      << report.ToString();
}

// --- Sessions ------------------------------------------------------------

class ConcurrencyDbTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_.CreateTable("t", Schema({{"a", ValueType::kInt},
                                 {"b", ValueType::kInt},
                                 {"s", ValueType::kString}}));
    std::vector<Row> rows;
    for (int i = 0; i < 1000; ++i) {
      rows.push_back({Value(int64_t(i)), Value(int64_t(i % 10)),
                      Value("s" + std::to_string(i % 7))});
    }
    ASSERT_TRUE(db_.BulkInsert("t", std::move(rows)).ok());
    db_.Analyze();
  }

  Database db_;
};

TEST_F(ConcurrencyDbTest, SessionsAccumulateIsolatedStats) {
  std::unique_ptr<Session> s1 = db_.CreateSession();
  std::unique_ptr<Session> s2 = db_.CreateSession();
  ASSERT_TRUE(s1->Execute("SELECT a FROM t WHERE b = 3").ok());
  ASSERT_TRUE(s1->Execute("SELECT a FROM t WHERE b = 4").ok());
  ASSERT_TRUE(s2->Execute("SELECT a FROM t WHERE a = 1").ok());
  EXPECT_EQ(s1->statements_executed(), 2u);
  EXPECT_EQ(s2->statements_executed(), 1u);
  EXPECT_GT(s1->cumulative_stats().tuples_examined, 0u);
  // Each session retains its own last plan (private executor).
  ASSERT_TRUE(s1->executor().last_plan().has_value());
  ASSERT_TRUE(s2->executor().last_plan().has_value());
}

TEST_F(ConcurrencyDbTest, WritesBumpDataVersion) {
  const uint64_t before = db_.data_version();
  ASSERT_TRUE(db_.Execute("INSERT INTO t VALUES (5000, 1, 'x')").ok());
  EXPECT_GT(db_.data_version(), before);
  const uint64_t after_insert = db_.data_version();
  // Reads leave the version alone.
  ASSERT_TRUE(db_.Execute("SELECT a FROM t WHERE a = 5000").ok());
  EXPECT_EQ(db_.data_version(), after_insert);
}

// --- Stress: N writers + M readers + a tuning thread ---------------------

TEST_F(ConcurrencyDbTest, ReadersWritersAndTunerRaceCleanly) {
  // Debug checks on: every write statement triggers a full CheckAll
  // (including the LatchValidator) from the writing thread, which also
  // exercises the all-table shared re-latch under contention.
  InstallDebugChecks(&db_);
  AutoIndexManager manager(&db_);

  constexpr int kWriters = 2;
  constexpr int kReaders = 2;
  constexpr int kOpsPerThread = 60;
  std::atomic<size_t> failures{0};

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([this, w, &failures] {
      std::unique_ptr<Session> session = db_.CreateSession();
      for (int i = 0; i < kOpsPerThread; ++i) {
        const int id = 10000 + w * kOpsPerThread + i;
        std::string sql;
        switch (i % 3) {
          case 0:
            sql = "INSERT INTO t VALUES (" + std::to_string(id) + ", " +
                  std::to_string(i % 10) + ", 'w')";
            break;
          case 1:
            sql = "UPDATE t SET b = " + std::to_string(i % 5) +
                  " WHERE a = " + std::to_string(id - 1);
            break;
          default:
            sql = "DELETE FROM t WHERE a = " + std::to_string(id - 2);
            break;
        }
        if (!session->Execute(sql).ok()) failures.fetch_add(1);
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([this, r, &failures] {
      std::unique_ptr<Session> session = db_.CreateSession();
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::string sql =
            i % 2 == 0
                ? "SELECT a, s FROM t WHERE b = " + std::to_string(i % 10)
                : "SELECT b, COUNT(a), AVG(a) FROM t WHERE a > " +
                      std::to_string(r * 100) + " GROUP BY b";
        if (!session->Execute(sql).ok()) failures.fetch_add(1);
      }
    });
  }
  std::atomic<bool> stop{false};
  std::thread tuner([this, &manager, &stop] {
    while (!stop.load()) {
      manager.ObserveOnly("SELECT a, s FROM t WHERE b = 3");
      manager.ObserveOnly("SELECT a FROM t WHERE a = 42");
      manager.RunManagementRound();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  for (std::thread& t : threads) t.join();
  stop.store(true);
  tuner.join();

  EXPECT_EQ(failures.load(), 0u);
  const CheckReport report = CheckAll(db_);
  EXPECT_TRUE(report.ok()) << report.ToString();
  // Every latch was released: the stress must leave no residue.
  EXPECT_TRUE(db_.latches().Snapshot().latches.empty());
  InstallDebugChecks(&db_, /*install=*/false);
}

// --- Regression: LIMIT stops pulling its child ---------------------------

TEST_F(ConcurrencyDbTest, LimitShortCircuitsUpstreamScan) {
  auto r = db_.Execute("SELECT a FROM t LIMIT 5");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 5u);
  EXPECT_EQ(r->stats.rows_returned, 5u);
  // Before the fix LimitOp drained its child dry: the scan below it
  // emitted all 1000 rows. With genuine early termination the scan is
  // pulled exactly `limit` times. (tuples_examined stays at table size —
  // the sequential scan materializes its match list up front by design.)
  ASSERT_TRUE(r->plan.has_value());
  const PlanNodeSnapshot* node = &*r->plan;  // Project -> Limit -> Scan
  while (!node->children.empty()) node = &node->children[0];
  EXPECT_EQ(node->actual.rows_out, 5);
}

// --- Regression: estimator cost memo invalidates on data change ----------

TEST_F(ConcurrencyDbTest, EstimatorCacheInvalidatesOnDataChange) {
  AutoIndexManager manager(&db_);
  for (int i = 0; i < 4; ++i) {
    manager.ObserveOnly("SELECT a FROM t WHERE b = 3");
  }
  const WorkloadModel model = manager.CurrentWorkload();
  ASSERT_FALSE(model.entries.empty());
  const IndexConfig config;
  const double before = manager.estimator().EstimateWorkloadCost(model, config);
  EXPECT_GT(manager.estimator().cache_size(), 0u);

  // Grow the table 5x and refresh stats: the memoized cost is stale now.
  std::vector<Row> rows;
  for (int i = 0; i < 4000; ++i) {
    rows.push_back({Value(int64_t(20000 + i)), Value(int64_t(i % 10)),
                    Value("g")});
  }
  ASSERT_TRUE(db_.BulkInsert("t", std::move(rows)).ok());
  db_.Analyze();

  const double after = manager.estimator().EstimateWorkloadCost(model, config);
  // The epoch guard must recompute against the larger table — a stale
  // memo would return `before` verbatim.
  EXPECT_GT(after, before);
}

// --- Regression: the learned model is guarded (obs_mu_) -------------------

// Before the annotation sweep, TrainModel wrote model_ while concurrent
// EstimateStatementCost / model_trained() calls read it with no lock — a
// data race TSan flags on the SigmoidRegression weights vector. The model
// now lives under obs_mu_ (trained on a copy, swapped in under the lock).
TEST_F(ConcurrencyDbTest, EstimatorModelTrainRacesWithEstimates) {
  IndexBenefitEstimator estimator(&db_);
  StatusOr<Statement> stmt = ParseSql("SELECT a FROM t WHERE b = 3");
  ASSERT_TRUE(stmt.ok());
  const std::vector<double> features =
      db_.WhatIfCost(*stmt, IndexConfig()).Features();

  std::atomic<bool> stop{false};
  std::thread trainer([&] {
    int round = 0;
    while (!stop.load()) {
      for (int i = 0; i < 8; ++i) {
        estimator.AddObservation(features, 50.0 + (round + i) % 17);
      }
      estimator.TrainModel(/*min_observations=*/8);
      ++round;
    }
  });
  bool saw_trained = false;
  for (int i = 0; i < 300; ++i) {
    const double cost = estimator.EstimateStatementCost(*stmt, IndexConfig());
    EXPECT_TRUE(std::isfinite(cost));
    saw_trained |= estimator.model_trained();
  }
  stop.store(true);
  trainer.join();
  // The trainer ran at least once by the end (8 observations per round).
  EXPECT_TRUE(estimator.model_trained() || !saw_trained);
}

// --- Regression: the MCTS budget knob is guarded (tree_mu_) ---------------

// set_storage_budget used to write config_.storage_budget_bytes with no
// lock while Run read it through WithinBudget on the tuning thread. Both
// sides now go through tree_mu_ (and config() returns a copy taken under
// the lock).
TEST_F(ConcurrencyDbTest, MctsBudgetMovesDuringRun) {
  AutoIndexManager manager(&db_);
  for (int i = 0; i < 4; ++i) {
    manager.ObserveOnly("SELECT a FROM t WHERE b = 3");
  }
  const WorkloadModel w = manager.CurrentWorkload();
  ASSERT_FALSE(w.entries.empty());

  IndexBenefitEstimator estimator(&db_);
  MctsConfig config;
  config.iterations = 40;
  MctsIndexSelector selector(&db_, &estimator, config);

  std::atomic<bool> stop{false};
  std::thread knob([&] {
    size_t budget = 0;
    while (!stop.load()) {
      selector.set_storage_budget(budget);
      budget = budget == 0 ? (size_t{1} << 20) : 0;
      EXPECT_GE(selector.config().iterations, 1u);
    }
  });
  for (int round = 0; round < 5; ++round) {
    const MctsResult result = selector.Run(
        IndexConfig(), {IndexDef("t", {"a"}), IndexDef("t", {"b"})}, w);
    EXPECT_GE(result.iterations_run, 1u);
    const Status tree_ok = selector.ValidateTree();
    EXPECT_TRUE(tree_ok.ok()) << tree_ok.ToString();
  }
  stop.store(true);
  knob.join();
}

// --- Regression: the durability-log pointer is guarded (wal_mu_) ----------

namespace {
class CountingLog : public DurabilityLog {
 public:
  Status AppendStatement(const Statement&, uint64_t) override {
    return Count();
  }
  Status AppendCreateTable(const std::string&, const Schema&,
                           uint64_t) override {
    return Count();
  }
  Status AppendCreateIndex(const IndexDef&, uint64_t) override {
    return Count();
  }
  Status AppendDropIndex(const std::string&, uint64_t) override {
    return Count();
  }
  Status AppendBulkInsert(const std::string&, const std::vector<Row>&,
                          uint64_t) override {
    return Count();
  }
  Status AppendAnalyze(const std::string&, uint64_t) override {
    return Count();
  }
  Status OnCheckpoint(uint64_t) override { return Status::Ok(); }

  size_t appends() const { return appends_.load(); }

 private:
  Status Count() {
    appends_.fetch_add(1, std::memory_order_relaxed);
    return Status::Ok();
  }
  std::atomic<size_t> appends_{0};
};
}  // namespace

// BulkInsert and the CommitDurable path used to read durability_log_
// outside wal_mu_, racing with set_durability_log. The pointer is guarded
// now, so attaching/detaching a log while writers commit is race-free
// (every statement sees either the old or the new log).
TEST_F(ConcurrencyDbTest, DurabilityLogAttachRacesWithWrites) {
  CountingLog log;
  std::atomic<bool> stop{false};
  std::thread writer([this, &stop] {
    std::unique_ptr<Session> session = db_.CreateSession();
    int id = 40000;
    while (!stop.load()) {
      const std::string sql =
          "INSERT INTO t VALUES (" + std::to_string(id++) + ", 1, 'd')";
      EXPECT_TRUE(session->Execute(sql).ok());
    }
  });
  for (int i = 0; i < 200; ++i) {
    db_.set_durability_log(&log);
    EXPECT_EQ(db_.durability_log(), &log);
    std::vector<Row> batch;
    batch.push_back({Value(int64_t(90000 + i)), Value(int64_t(2)),
                     Value("bulk")});
    EXPECT_TRUE(db_.BulkInsert("t", std::move(batch)).ok());
    db_.set_durability_log(nullptr);
  }
  stop.store(true);
  writer.join();
  // Every bulk batch committed while the log was attached was appended.
  EXPECT_GE(log.appends(), 200u);
  EXPECT_TRUE(db_.latches().Snapshot().latches.empty());
}

// --- Regression: SUM/AVG over string columns are NULL --------------------

TEST_F(ConcurrencyDbTest, SumAvgOverStringsReturnNull) {
  auto r = db_.Execute("SELECT SUM(s), AVG(s), COUNT(s), MIN(s) FROM t");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_TRUE(r->rows[0][0].is_null());  // SUM over strings: no number
  EXPECT_TRUE(r->rows[0][1].is_null());  // AVG likewise
  EXPECT_EQ(r->rows[0][2].AsInt(), 1000);  // COUNT still counts
  EXPECT_FALSE(r->rows[0][3].is_null());   // MIN/MAX compare fine
}

}  // namespace
}  // namespace autoindex
