// Durability subsystem tests (label: tier1;recovery): serde primitives,
// checksummed file framing, snapshot round-trips checked differentially
// against the live database, WAL append/replay, and the crash matrix —
// torn WAL tails at every record boundary and checkpoint saves crashed at
// every section boundary must always recover to the prior consistent
// state.

#include <gtest/gtest.h>
#include <sys/stat.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "core/manager.h"
#include "persist/file_format.h"
#include "persist/io.h"
#include "persist/serde.h"
#include "persist/snapshot.h"
#include "persist/wal.h"
#include "query_gen.h"
#include "util/string_util.h"
#include "workload/trace.h"

namespace autoindex {
namespace {

using persist::FileReader;
using persist::FileWriter;
using persist::Reader;
using persist::RecoveryReport;
using persist::Wal;
using persist::WalReplay;
using persist::Writer;

// A fresh snapshot directory under the test temp dir: created if needed,
// emptied of any leftover durability files from a previous run.
std::string FreshDir(const char* name) {
  const std::string dir = std::string(::testing::TempDir()) + "/" + name;
  ::mkdir(dir.c_str(), 0755);
  std::remove(persist::CheckpointPath(dir).c_str());
  std::remove((persist::CheckpointPath(dir) + ".tmp").c_str());
  std::remove(persist::WalPath(dir).c_str());
  return dir;
}

// Runs `n` generated queries against both databases and compares result
// multisets; the recovered database must be query-for-query identical.
void ExpectSameResults(Database* a, Database* b, uint64_t seed, int n) {
  querygen::GenContext gen(seed);
  for (int i = 0; i < n; ++i) {
    const std::string sql = gen.RandQuery();
    StatusOr<ExecResult> ra = a->Execute(sql);
    StatusOr<ExecResult> rb = b->Execute(sql);
    ASSERT_EQ(ra.ok(), rb.ok()) << sql;
    if (!ra.ok()) continue;
    ASSERT_EQ(querygen::Canonical(ra->rows), querygen::Canonical(rb->rows))
        << sql;
  }
}

int64_t CountRows(Database* db, const std::string& table) {
  StatusOr<ExecResult> r = db->Execute("SELECT COUNT(*) FROM " + table);
  CheckOk(r.status());
  return std::stoll(r->rows[0][0].ToString());
}

// --- serde primitives ---------------------------------------------------

TEST(Serde, PrimitivesRoundTrip) {
  Writer w;
  w.PutU8(0xAB);
  w.PutBool(true);
  w.PutU32(0xDEADBEEFu);
  w.PutU64(0x0123456789ABCDEFull);
  w.PutI64(-42);
  w.PutDouble(3.14159265358979);
  w.PutString(std::string("nul\0byte", 8));
  persist::PutValue(&w, Value::Null());
  persist::PutValue(&w, Value(int64_t(-7)));
  persist::PutValue(&w, Value(2.5));
  persist::PutValue(&w, Value(std::string("str")));
  persist::PutRow(&w, {Value(int64_t(1)), Value(std::string("x"))});

  Reader r(w.buffer());
  EXPECT_EQ(r.GetU8(), 0xAB);
  EXPECT_TRUE(r.GetBool());
  EXPECT_EQ(r.GetU32(), 0xDEADBEEFu);
  EXPECT_EQ(r.GetU64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.GetI64(), -42);
  EXPECT_DOUBLE_EQ(r.GetDouble(), 3.14159265358979);
  EXPECT_EQ(r.GetString(), std::string("nul\0byte", 8));
  EXPECT_TRUE(persist::GetValue(&r).is_null());
  EXPECT_EQ(persist::GetValue(&r).ToString(), "-7");
  EXPECT_DOUBLE_EQ(persist::GetValue(&r).AsDouble(), 2.5);
  EXPECT_EQ(persist::GetValue(&r).ToString(), "str");
  const Row row = persist::GetRow(&r);
  ASSERT_EQ(row.size(), 2u);
  EXPECT_TRUE(r.AtEnd());
}

TEST(Serde, ShortReadIsStickyError) {
  Writer w;
  w.PutU32(7);
  Reader r(w.buffer());
  EXPECT_EQ(r.GetU64(), 0u);  // 4 bytes short
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
  // Sticky: later reads keep failing and return zero values.
  EXPECT_EQ(r.GetU32(), 0u);
  EXPECT_EQ(r.GetString(), "");
  EXPECT_FALSE(r.AtEnd());
}

TEST(FileFormat, DetectsCorruptionAndTruncation) {
  FileWriter file("AIXTEST1", 3);
  Writer a;
  a.PutString("first section payload");
  file.AddSection(1, a);
  Writer b;
  for (int i = 0; i < 50; ++i) b.PutU64(static_cast<uint64_t>(i));
  file.AddSection(2, b);
  const std::string bytes = file.Serialize();

  // Clean parse.
  StatusOr<FileReader> parsed = FileReader::Parse(bytes, "AIXTEST1", 3);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->num_sections(), 2u);
  ASSERT_NE(parsed->Find(2), nullptr);
  EXPECT_EQ(parsed->Find(3), nullptr);

  // Wrong magic and wrong version.
  EXPECT_FALSE(FileReader::Parse(bytes, "OTHERMAG", 3).ok());
  EXPECT_FALSE(FileReader::Parse(bytes, "AIXTEST1", 4).ok());

  // Any flipped payload byte fails the section CRC.
  for (size_t pos : {bytes.size() - 1, bytes.size() - 100, size_t{30}}) {
    std::string corrupt = bytes;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x40);
    EXPECT_FALSE(FileReader::Parse(corrupt, "AIXTEST1", 3).ok())
        << "flip at " << pos;
  }

  // Truncation anywhere strictly inside a section fails; truncation at a
  // section boundary parses the complete prefix.
  const std::vector<size_t> boundaries = file.SectionBoundaries();
  for (size_t i = 0; i + 1 < boundaries.size(); ++i) {
    const size_t mid = (boundaries[i] + boundaries[i + 1]) / 2;
    EXPECT_FALSE(
        FileReader::Parse(bytes.substr(0, mid), "AIXTEST1", 3).ok())
        << "cut at " << mid;
    StatusOr<FileReader> prefix =
        FileReader::Parse(bytes.substr(0, boundaries[i]), "AIXTEST1", 3);
    ASSERT_TRUE(prefix.ok());
    EXPECT_EQ(prefix->num_sections(), i);
  }
}

// --- snapshot round-trip ------------------------------------------------

// Live database vs save/load round-trip: 200 generated queries must agree.
TEST(Snapshot, DifferentialRoundTrip) {
  const std::string dir = FreshDir("snap_roundtrip");
  Database db;
  querygen::BuildPropertyTestTables(&db, 7);
  // Mix in deletes/updates so tombstones and moved rows are exercised, and
  // a couple of real indexes so rebuild-on-load runs.
  CheckOk(db.Execute("DELETE FROM t1 WHERE a = 3"));
  CheckOk(db.Execute("UPDATE t1 SET b = 39 WHERE c = 5"));
  CheckOk(db.Execute("DELETE FROM t2 WHERE x > 35"));
  db.Analyze();
  IndexDef idx1;
  idx1.table = "t1";
  idx1.columns = {"b"};
  CheckOk(db.CreateIndex(idx1));
  IndexDef idx2;
  idx2.table = "t2";
  idx2.columns = {"x", "y"};
  CheckOk(db.CreateIndex(idx2));

  StatusOr<uint64_t> saved = persist::SaveSnapshot(&db, nullptr, dir);
  ASSERT_TRUE(saved.ok()) << saved.status().ToString();
  EXPECT_EQ(*saved, db.data_version());

  Database restored;
  RecoveryReport report;
  StatusOr<std::unique_ptr<Wal>> wal =
      persist::OpenSnapshot(&restored, nullptr, dir, &report);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  EXPECT_EQ(report.tables_restored, 2u);
  EXPECT_EQ(report.indexes_rebuilt, 2u);
  EXPECT_EQ(report.wal_records_replayed, 0u);
  EXPECT_EQ(restored.data_version(), db.data_version());
  EXPECT_EQ(restored.index_manager().num_indexes(), 2u);

  ExpectSameResults(&db, &restored, 1234, 200);
}

// Saving, loading, and saving again must produce byte-identical
// checkpoints: every container is serialized in a deterministic order and
// the reload reproduces heap layout (RowIds, tombstones) exactly.
TEST(Snapshot, CheckpointBytesAreStableAcrossReload) {
  const std::string dir = FreshDir("snap_stable");
  Database db;
  AutoIndexConfig config;
  config.mcts.iterations = 40;
  AutoIndexManager manager(&db, config);
  querygen::BuildPropertyTestTables(&db, 11);
  CheckOk(db.Execute("DELETE FROM t1 WHERE b = 9"));
  IndexDef idx;
  idx.table = "t1";
  idx.columns = {"a"};
  CheckOk(db.CreateIndex(idx));
  for (int i = 0; i < 40; ++i) {
    CheckOk(manager.ExecuteAndObserve(
        StrFormat("SELECT a, b, c FROM t1 WHERE b = %d", i % 17)));
  }

  StatusOr<FileWriter> first = persist::BuildCheckpoint(db, &manager);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(first->WriteAtomic(persist::CheckpointPath(dir)).ok());

  Database restored;
  AutoIndexManager restored_manager(&restored, config);
  RecoveryReport report;
  StatusOr<std::unique_ptr<Wal>> wal =
      persist::OpenSnapshot(&restored, &restored_manager, dir, &report);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  EXPECT_TRUE(report.tuning_state_restored);

  StatusOr<FileWriter> second =
      persist::BuildCheckpoint(restored, &restored_manager);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(first->Serialize(), second->Serialize());
}

// The restored tuning state must drive MCTS to the same recommendation the
// live manager would produce — policy tree, template store, estimator
// feedback, and rng all resume exactly.
TEST(Snapshot, MctsRecommendationSurvivesReload) {
  const std::string dir = FreshDir("snap_mcts");
  Database db;
  AutoIndexConfig config;
  config.mcts.iterations = 80;
  AutoIndexManager manager(&db, config);
  querygen::BuildPropertyTestTables(&db, 3);
  querygen::GenContext gen(77);
  for (int i = 0; i < 120; ++i) {
    CheckOk(manager.ExecuteAndObserve(gen.RandQuery()));
  }

  StatusOr<uint64_t> saved = persist::SaveSnapshot(&db, &manager, dir);
  ASSERT_TRUE(saved.ok()) << saved.status().ToString();

  Database restored;
  AutoIndexManager restored_manager(&restored, config);
  RecoveryReport report;
  StatusOr<std::unique_ptr<Wal>> wal =
      persist::OpenSnapshot(&restored, &restored_manager, dir, &report);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  ASSERT_TRUE(report.tuning_state_restored);

  const TuningResult live = manager.RunManagementRound(/*apply=*/false);
  const TuningResult replayed =
      restored_manager.RunManagementRound(/*apply=*/false);

  auto names = [](const std::vector<IndexDef>& defs) {
    std::vector<std::string> out;
    for (const IndexDef& def : defs) out.push_back(def.DisplayName());
    return out;
  };
  EXPECT_EQ(names(live.added), names(replayed.added));
  EXPECT_EQ(names(live.removed), names(replayed.removed));
  EXPECT_DOUBLE_EQ(live.est_benefit, replayed.est_benefit);
}

// --- WAL ----------------------------------------------------------------

TEST(Wal, AppendsReplayOntoCheckpoint) {
  const std::string dir = FreshDir("wal_replay");
  Database db;
  querygen::BuildPropertyTestTables(&db, 5);

  StatusOr<uint64_t> saved = persist::SaveSnapshot(&db, nullptr, dir);
  ASSERT_TRUE(saved.ok()) << saved.status().ToString();
  StatusOr<std::unique_ptr<Wal>> wal =
      Wal::Create(persist::WalPath(dir), *saved);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  db.set_durability_log(wal->get());

  size_t writes = 0;
  for (int i = 0; i < 10; ++i) {
    CheckOk(db.Execute(StrFormat(
        "INSERT INTO t1 VALUES (%d, %d, %d, 'v%d')", 100 + i, i, i, i % 6)));
    ++writes;
  }
  CheckOk(db.Execute("UPDATE t1 SET c = 1 WHERE a = 101"));
  CheckOk(db.Execute("DELETE FROM t2 WHERE x = 12"));
  writes += 2;
  IndexDef idx;
  idx.table = "t1";
  idx.columns = {"c"};
  CheckOk(db.CreateIndex(idx));
  ++writes;  // DDL is logged too
  EXPECT_EQ((*wal)->records_appended(), writes);

  Database restored;
  RecoveryReport report;
  StatusOr<std::unique_ptr<Wal>> reopened =
      persist::OpenSnapshot(&restored, nullptr, dir, &report);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(report.wal_records_replayed, writes);
  EXPECT_EQ(report.info.wal_bytes_truncated, 0u);
  EXPECT_EQ(restored.data_version(), db.data_version());
  EXPECT_EQ(restored.index_manager().num_indexes(), 1u);
  ExpectSameResults(&db, &restored, 4321, 100);
  db.set_durability_log(nullptr);
}

// Tear the WAL at every record boundary and at offsets inside every
// record: recovery must always come back to the longest durable prefix —
// never crash, never apply a torn record.
TEST(Wal, TornTailAlwaysRecoversToDurablePrefix) {
  const std::string dir = FreshDir("wal_torn_src");
  Database db;
  CheckOk(db.CreateTable(
      "k", Schema({{"a", ValueType::kInt}, {"b", ValueType::kInt}})));
  std::vector<Row> rows;
  for (int i = 0; i < 10; ++i) {
    rows.push_back({Value(int64_t(i)), Value(int64_t(i * 2))});
  }
  CheckOk(db.BulkInsert("k", std::move(rows)));
  db.Analyze();

  StatusOr<uint64_t> saved = persist::SaveSnapshot(&db, nullptr, dir);
  ASSERT_TRUE(saved.ok()) << saved.status().ToString();
  StatusOr<std::unique_ptr<Wal>> wal =
      Wal::Create(persist::WalPath(dir), *saved);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  db.set_durability_log(wal->get());
  const int kAppends = 6;
  for (int i = 0; i < kAppends; ++i) {
    CheckOk(db.Execute(
        StrFormat("INSERT INTO k VALUES (%d, %d)", 100 + i, i)));
  }
  db.set_durability_log(nullptr);

  std::string checkpoint_bytes;
  CheckOk(persist::ReadFileToString(persist::CheckpointPath(dir),
                                    &checkpoint_bytes));
  std::string wal_bytes;
  CheckOk(persist::ReadFileToString(persist::WalPath(dir), &wal_bytes));

  // Record boundaries: 20-byte header, then (8-byte frame + payload)*.
  std::vector<size_t> boundaries;
  size_t pos = 20;
  boundaries.push_back(pos);
  while (pos + 8 <= wal_bytes.size()) {
    Reader frame(wal_bytes.data() + pos, 4);
    pos += 8 + frame.GetU32();
    boundaries.push_back(pos);
  }
  ASSERT_EQ(boundaries.size(), static_cast<size_t>(kAppends) + 1);
  ASSERT_EQ(boundaries.back(), wal_bytes.size());

  std::vector<size_t> cuts = {0, 5, 19};  // inside the header too
  for (size_t b : boundaries) {
    for (size_t c : {b, b + 1, b + 6, b + 13}) {
      if (c <= wal_bytes.size()) cuts.push_back(c);
    }
  }
  const std::string dir2 = FreshDir("wal_torn_cut");
  for (size_t cut : cuts) {
    CheckOk(persist::AtomicWriteFile(persist::CheckpointPath(dir2),
                                     checkpoint_bytes));
    CheckOk(persist::AtomicWriteFile(persist::WalPath(dir2),
                                     wal_bytes.substr(0, cut)));
    // Complete records strictly inside the cut survive; the torn one must
    // be dropped.
    size_t complete = 0;
    while (complete + 1 < boundaries.size() &&
           boundaries[complete + 1] <= cut) {
      ++complete;
    }
    Database restored;
    RecoveryReport report;
    StatusOr<std::unique_ptr<Wal>> reopened =
        persist::OpenSnapshot(&restored, nullptr, dir2, &report);
    ASSERT_TRUE(reopened.ok())
        << "cut at " << cut << ": " << reopened.status().ToString();
    EXPECT_EQ(report.wal_records_replayed, complete) << "cut at " << cut;
    EXPECT_EQ(CountRows(&restored, "k"),
              static_cast<int64_t>(10 + complete))
        << "cut at " << cut;
    EXPECT_EQ(restored.data_version(), *saved + complete)
        << "cut at " << cut;
  }
}

// Crash the checkpoint writer at every section boundary (and inside
// sections): the previous checkpoint must stay intact and loadable, and a
// retry after the "reboot" must succeed.
TEST(Snapshot, CrashedSaveLeavesPreviousCheckpointIntact) {
  const std::string dir = FreshDir("snap_crash");
  Database db;
  CheckOk(db.CreateTable(
      "k", Schema({{"a", ValueType::kInt}, {"b", ValueType::kInt}})));
  std::vector<Row> rows;
  for (int i = 0; i < 10; ++i) {
    rows.push_back({Value(int64_t(i)), Value(int64_t(i))});
  }
  CheckOk(db.BulkInsert("k", std::move(rows)));
  db.Analyze();
  StatusOr<uint64_t> saved = persist::SaveSnapshot(&db, nullptr, dir);
  ASSERT_TRUE(saved.ok()) << saved.status().ToString();

  // Advance to a new state whose save we will crash.
  for (int i = 0; i < 5; ++i) {
    CheckOk(db.Execute(StrFormat("INSERT INTO k VALUES (%d, 0)", 50 + i)));
  }
  StatusOr<FileWriter> image = persist::BuildCheckpoint(db, nullptr);
  ASSERT_TRUE(image.ok());
  const size_t image_size = image->Serialize().size();
  std::vector<size_t> budgets = {0};
  for (size_t b : image->SectionBoundaries()) {
    for (size_t budget : {b, b + 5}) {
      // A budget >= the image size never tears the write; skip it.
      if (budget < image_size) budgets.push_back(budget);
    }
  }

  for (size_t budget : budgets) {
    persist::SetCrashAfterBytes(static_cast<int64_t>(budget));
    StatusOr<uint64_t> crashed = persist::SaveSnapshot(&db, nullptr, dir);
    const bool triggered = persist::CrashTriggered();
    persist::SetCrashAfterBytes(-1);  // disarm (also clears the flag)
    ASSERT_FALSE(crashed.ok()) << "budget " << budget;
    ASSERT_TRUE(triggered) << "budget " << budget;

    // "Reboot": the old checkpoint still loads to the old state.
    Database restored;
    RecoveryReport report;
    StatusOr<std::unique_ptr<Wal>> wal =
        persist::OpenSnapshot(&restored, nullptr, dir, &report);
    ASSERT_TRUE(wal.ok())
        << "budget " << budget << ": " << wal.status().ToString();
    EXPECT_EQ(CountRows(&restored, "k"), 10) << "budget " << budget;
    EXPECT_EQ(restored.data_version(), *saved) << "budget " << budget;
  }

  // With the crash hook disarmed the retry lands the new state.
  StatusOr<uint64_t> retried = persist::SaveSnapshot(&db, nullptr, dir);
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  Database restored;
  RecoveryReport report;
  StatusOr<std::unique_ptr<Wal>> wal =
      persist::OpenSnapshot(&restored, nullptr, dir, &report);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  EXPECT_EQ(CountRows(&restored, "k"), 15);
}

// --- workload trace hardening -------------------------------------------

TEST(Trace, TruncationAndCorruptionFailWithStatus) {
  const std::string path =
      std::string(::testing::TempDir()) + "/torn.trace";
  const std::vector<std::string> queries = {
      "SELECT a FROM t WHERE b = 1",
      "INSERT INTO t VALUES (1, 'x')",
  };
  CheckOk(SaveWorkloadTrace(path, queries));
  std::string bytes;
  CheckOk(persist::ReadFileToString(path, &bytes));

  for (size_t cut : {bytes.size() - 1, bytes.size() / 2, size_t{13}}) {
    CheckOk(persist::AtomicWriteFile(path, bytes.substr(0, cut)));
    StatusOr<std::vector<std::string>> loaded = LoadWorkloadTrace(path);
    EXPECT_FALSE(loaded.ok()) << "cut at " << cut;
  }

  std::string corrupt = bytes;
  corrupt[bytes.size() - 3] ^= 0x01;
  CheckOk(persist::AtomicWriteFile(path, corrupt));
  EXPECT_FALSE(LoadWorkloadTrace(path).ok());

  // Intact bytes still load.
  CheckOk(persist::AtomicWriteFile(path, bytes));
  StatusOr<std::vector<std::string>> loaded = LoadWorkloadTrace(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, queries);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace autoindex
