#include <gtest/gtest.h>

#include "core/query_template.h"
#include "sql/parser.h"
#include "util/string_util.h"

namespace autoindex {
namespace {

TEST(TemplateStore, GroupsByFingerprint) {
  TemplateStore store(100);
  QueryTemplate* a = store.Observe("SELECT a FROM t WHERE b = 1");
  QueryTemplate* b = store.Observe("SELECT a FROM t WHERE b = 2");
  QueryTemplate* c = store.Observe("SELECT a FROM t WHERE c = 2");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a, b);  // same template
  EXPECT_NE(a, c);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_DOUBLE_EQ(a->frequency, 2.0);
  EXPECT_EQ(a->total_matches, 2u);
}

TEST(TemplateStore, UnparseableReturnsNull) {
  TemplateStore store(10);
  EXPECT_EQ(store.Observe("NOT SQL AT ALL !!"), nullptr);
}

TEST(TemplateStore, MarksWrites) {
  TemplateStore store(10);
  QueryTemplate* w = store.Observe("UPDATE t SET a = 1 WHERE b = 2");
  QueryTemplate* r = store.Observe("SELECT a FROM t");
  ASSERT_NE(w, nullptr);
  ASSERT_NE(r, nullptr);
  EXPECT_TRUE(w->is_write);
  EXPECT_FALSE(r->is_write);
}

TEST(TemplateStore, CapacityEvictsLowestFrequency) {
  TemplateStore store(3);
  // Template A seen 5 times, B 3 times, C once.
  for (int i = 0; i < 5; ++i) {
    store.Observe(StrFormat("SELECT a FROM t WHERE a = %d", i));
  }
  for (int i = 0; i < 3; ++i) {
    store.Observe(StrFormat("SELECT b FROM t WHERE b = %d", i));
  }
  store.Observe("SELECT c FROM t WHERE c = 1");
  EXPECT_EQ(store.size(), 3u);
  // A fourth distinct template evicts the least frequent (C).
  store.Observe("SELECT d FROM t WHERE d = 1");
  auto templates = store.TemplatesByFrequency();
  ASSERT_EQ(templates.size(), 3u);
  EXPECT_DOUBLE_EQ(templates[0]->frequency, 5.0);
  for (const QueryTemplate* t : templates) {
    EXPECT_EQ(t->fingerprint.find("SELECT c"), std::string::npos);
  }
}

TEST(TemplateStore, FrequencyOrdering) {
  TemplateStore store(10);
  store.Observe("SELECT a FROM t");
  store.Observe("SELECT b FROM t");
  store.Observe("SELECT b FROM t");
  auto templates = store.TemplatesByFrequency();
  ASSERT_EQ(templates.size(), 2u);
  EXPECT_GT(templates[0]->frequency, templates[1]->frequency);
}

TEST(TemplateStore, DecayShrinksAndEvicts) {
  TemplateStore store(10);
  for (int i = 0; i < 8; ++i) store.Observe("SELECT a FROM t WHERE a = 1");
  store.Observe("SELECT b FROM t WHERE b = 1");
  EXPECT_EQ(store.size(), 2u);
  // Make both templates stale (eviction only touches templates not seen
  // in the current round).
  store.AdvanceRound();
  store.Decay(0.5, /*min_frequency=*/0.6);
  // A: 8 -> 4 survives; B: 1 -> 0.5 evicted.
  EXPECT_EQ(store.size(), 1u);
  EXPECT_DOUBLE_EQ(store.TemplatesByFrequency()[0]->frequency, 4.0);
}

// Regression: Decay used to erase templates the workload is actively
// sending. A template first seen in the current round starts at frequency
// 1.0, so one aggressive decay put it under the floor and dropped it even
// though it had just arrived — the tuner then never saw the new workload
// shape. Templates with last_seen_round == current round must survive
// regardless of decayed frequency.
TEST(TemplateStore, DecayKeepsTemplatesSeenThisRound) {
  TemplateStore store(10);
  // Stale: seen only in round 0.
  store.Observe("SELECT a FROM t WHERE a = 1");
  store.AdvanceRound();
  // Live: first seen in the current round.
  store.Observe("SELECT b FROM t WHERE b = 1");
  ASSERT_EQ(store.size(), 2u);
  // 0.25 pushes both frequencies (1.0 -> 0.25) under the floor; only the
  // stale one may go.
  store.Decay(0.25, /*min_frequency=*/0.6);
  auto templates = store.TemplatesByFrequency();
  ASSERT_EQ(templates.size(), 1u);
  EXPECT_EQ(templates[0]->last_seen_round, store.round());
  EXPECT_NE(templates[0]->fingerprint.find("SELECT b"), std::string::npos);
}

TEST(TemplateStore, MatchRateSignalsDrift) {
  TemplateStore store(100);
  for (int i = 0; i < 10; ++i) store.Observe("SELECT a FROM t WHERE a = 1");
  EXPECT_GT(store.MatchRate(), 0.8);
  store.ResetMatchStats();
  // A brand-new workload: nothing matches.
  for (int i = 0; i < 10; ++i) {
    store.Observe(StrFormat("SELECT x%d FROM u WHERE y = 1", i));
  }
  EXPECT_LT(store.MatchRate(), 0.2);
}

TEST(TemplateStore, RoundTracking) {
  TemplateStore store(10);
  EXPECT_EQ(store.round(), 0u);
  store.Observe("SELECT a FROM t");
  store.AdvanceRound();
  store.Observe("SELECT a FROM t");
  auto templates = store.TemplatesByFrequency();
  EXPECT_EQ(templates[0]->last_seen_round, 1u);
  EXPECT_EQ(store.round(), 1u);
}

TEST(TemplateStore, PreParsedObserve) {
  TemplateStore store(10);
  auto stmt = ParseSql("SELECT a FROM t WHERE b = 5");
  ASSERT_TRUE(stmt.ok());
  QueryTemplate* t1 = store.Observe(*stmt, "SELECT a FROM t WHERE b = 5");
  QueryTemplate* t2 = store.Observe("SELECT a FROM t WHERE b = 7");
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(store.total_observed(), 2u);
}

TEST(TemplateStore, RepresentativeKeepsStructure) {
  TemplateStore store(10);
  QueryTemplate* t =
      store.Observe("SELECT a FROM t WHERE b = 42 AND c > 10");
  ASSERT_NE(t, nullptr);
  ASSERT_EQ(t->representative.kind, StatementKind::kSelect);
  EXPECT_NE(t->representative.select->where, nullptr);
}

}  // namespace
}  // namespace autoindex
