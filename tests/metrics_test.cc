// Observability layer tests (DESIGN.md §11): histogram determinism, shard
// merge equivalence, multi-writer stress (run under TSan by the
// concurrency label), registry semantics, the MetricsValidator's
// corruption drills, and the workload driver's coordinated-omission
// correction.

#include <gtest/gtest.h>
#include <sys/stat.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "check/metrics_validator.h"
#include "check/validator.h"
#include "core/manager.h"
#include "persist/file_format.h"
#include "persist/snapshot.h"
#include "persist/wal.h"
#include "util/metrics.h"
#include "util/string_util.h"
#include "workload/driver.h"

namespace autoindex {
namespace {

using util::HistogramSnapshot;
using util::LatencyHistogram;
using util::MetricsRegistry;

// Runs just the MetricsValidator (empty context — it only reads the
// process-wide registry).
void RunMetricsValidator(CheckReport* report) {
  MetricsValidator validator;
  CheckContext ctx;
  validator.Validate(ctx, report);
}

// --- bucket scheme ------------------------------------------------------

TEST(Histogram, BucketScheme) {
  // Bucket b holds values with bit_width b: 0 -> bucket 0, [2^(b-1), 2^b)
  // -> bucket b.
  EXPECT_EQ(LatencyHistogram::BucketFor(0), 0u);
  EXPECT_EQ(LatencyHistogram::BucketFor(1), 1u);
  EXPECT_EQ(LatencyHistogram::BucketFor(2), 2u);
  EXPECT_EQ(LatencyHistogram::BucketFor(3), 2u);
  EXPECT_EQ(LatencyHistogram::BucketFor(255), 8u);
  EXPECT_EQ(LatencyHistogram::BucketFor(256), 9u);
  EXPECT_EQ(LatencyHistogram::BucketFor(511), 9u);
  EXPECT_EQ(LatencyHistogram::BucketFor(512), 10u);

  EXPECT_EQ(HistogramSnapshot::BucketUpperBound(0), 0u);
  EXPECT_EQ(HistogramSnapshot::BucketUpperBound(9), 511u);
  EXPECT_EQ(HistogramSnapshot::BucketUpperBound(10), 1023u);
  EXPECT_EQ(
      HistogramSnapshot::BucketUpperBound(HistogramSnapshot::kNumBuckets - 1),
      UINT64_MAX);
}

TEST(Histogram, DeterministicPercentiles) {
  LatencyHistogram hist;
  for (uint64_t us = 1; us <= 1000; ++us) hist.Record(us);
  const HistogramSnapshot snap = hist.Snapshot();
  ASSERT_EQ(snap.count, 1000u);
  EXPECT_EQ(snap.sum_us, 500500u);
  EXPECT_EQ(snap.max_us, 1000u);
  EXPECT_EQ(snap.BucketSum(), snap.count);
  // Rank 500 lands in bucket [256, 511] -> upper bound 511.
  EXPECT_EQ(snap.P50Us(), 511u);
  // Ranks 900/990 land in bucket [512, 1023]; the reported value is
  // clamped to the observed max.
  EXPECT_EQ(snap.P90Us(), 1000u);
  EXPECT_EQ(snap.P99Us(), 1000u);
  EXPECT_DOUBLE_EQ(snap.MeanUs(), 500.5);
}

TEST(Histogram, EmptySnapshotIsZero) {
  LatencyHistogram hist;
  const HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.P50Us(), 0u);
  EXPECT_EQ(snap.P99Us(), 0u);
  EXPECT_DOUBLE_EQ(snap.MeanUs(), 0.0);
}

TEST(Histogram, ShardMergeEquivalence) {
  if constexpr (!util::kMetricsEnabled) GTEST_SKIP();
  // The same multiset recorded from 8 threads (spread across shards) and
  // from one thread must produce identical snapshots.
  LatencyHistogram sharded;
  LatencyHistogram single;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 5000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&sharded, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        sharded.Record(static_cast<uint64_t>(t) * 1000 + i % 997);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  for (int t = 0; t < kThreads; ++t) {
    for (uint64_t i = 0; i < kPerThread; ++i) {
      single.Record(static_cast<uint64_t>(t) * 1000 + i % 997);
    }
  }
  const HistogramSnapshot a = sharded.Snapshot();
  const HistogramSnapshot b = single.Snapshot();
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.sum_us, b.sum_us);
  EXPECT_EQ(a.max_us, b.max_us);
  EXPECT_EQ(a.buckets, b.buckets);
}

TEST(Histogram, MultiWriterStressKeepsInvariants) {
  if constexpr (!util::kMetricsEnabled) GTEST_SKIP();
  // TSan target (tier1;concurrency): concurrent writers + a racing
  // snapshotter. The one-sided invariant bucket_sum >= count must hold in
  // every mid-race snapshot; totals must be exact once quiescent.
  LatencyHistogram hist;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::atomic<bool> done{false};
  std::thread snapshotter([&] {
    while (!done.load(std::memory_order_acquire)) {
      const HistogramSnapshot snap = hist.Snapshot();
      ASSERT_GE(snap.BucketSum(), snap.count);
    }
  });
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&hist] {
      for (uint64_t i = 0; i < kPerThread; ++i) hist.Record(i % 4096);
    });
  }
  for (std::thread& w : writers) w.join();
  done.store(true, std::memory_order_release);
  snapshotter.join();

  const HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(snap.BucketSum(), snap.count);
  EXPECT_EQ(snap.max_us, 4095u);
}

TEST(Histogram, MergeAddsSnapshots) {
  LatencyHistogram a;
  LatencyHistogram b;
  a.Record(10);
  a.Record(100);
  b.Record(1000);
  HistogramSnapshot merged = a.Snapshot();
  merged.Merge(b.Snapshot());
  EXPECT_EQ(merged.count, 3u);
  EXPECT_EQ(merged.sum_us, 1110u);
  EXPECT_EQ(merged.max_us, 1000u);
  EXPECT_EQ(merged.BucketSum(), 3u);
}

// --- registry -----------------------------------------------------------

TEST(Registry, StablePointersAndPrefixSnapshots) {
  auto& registry = MetricsRegistry::Default();
  registry.ResetForTest();
  util::Counter* c1 = registry.GetCounter("testreg.alpha");
  util::Counter* c2 = registry.GetCounter("testreg.alpha");
  EXPECT_EQ(c1, c2);  // stable for the process lifetime
  registry.GetGauge("testreg.depth")->Set(42);
  registry.GetHistogram("testreg.lat_us")->Record(100);
  c1->Add(7);

  const auto all = registry.Snapshot("testreg.");
  ASSERT_EQ(all.size(), 3u);  // sorted: alpha, depth, lat_us
  EXPECT_EQ(all[0].name, "testreg.alpha");
  EXPECT_EQ(all[0].kind, MetricsRegistry::Kind::kCounter);
  EXPECT_EQ(all[0].counter, util::kMetricsEnabled ? 7u : 0u);
  EXPECT_EQ(all[1].name, "testreg.depth");
  EXPECT_EQ(all[1].gauge, util::kMetricsEnabled ? 42 : 0);
  EXPECT_EQ(all[2].name, "testreg.lat_us");
  EXPECT_EQ(all[2].hist.count, util::kMetricsEnabled ? 1u : 0u);

  // ResetForTest zeroes values but keeps registrations (and pointers).
  registry.ResetForTest();
  EXPECT_EQ(c1->value(), 0u);
  EXPECT_EQ(registry.GetCounter("testreg.alpha"), c1);
}

TEST(Registry, KindCollisionYieldsDummyAndIsCounted) {
  auto& registry = MetricsRegistry::Default();
  registry.ResetForTest();
  util::Counter* counter = registry.GetCounter("testreg.collide");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(registry.type_collisions(), 0u);
  // Same name, wrong kind: caller gets a usable dummy, the registry
  // counts the bug, and the validator turns it into a check failure.
  util::Gauge* dummy = registry.GetGauge("testreg.collide");
  ASSERT_NE(dummy, nullptr);
  dummy->Set(5);  // must not crash
  EXPECT_EQ(registry.type_collisions(), 1u);

  CheckReport report;
  RunMetricsValidator(&report);
  EXPECT_FALSE(report.ok());

  registry.ResetForTest();  // clears the collision for later tests
  EXPECT_EQ(registry.type_collisions(), 0u);
}

TEST(Registry, RenderTextPrometheusFormat) {
  if constexpr (!util::kMetricsEnabled) GTEST_SKIP();
  auto& registry = MetricsRegistry::Default();
  registry.ResetForTest();
  registry.GetCounter("testreg.render.events")->Add(3);
  registry.GetGauge("testreg.render.depth")->Set(-2);
  auto* hist = registry.GetHistogram("testreg.render.lat_us");
  hist->Record(5);
  hist->Record(300);

  const std::string text = registry.RenderText("testreg.render.");
  EXPECT_NE(text.find("# TYPE autoindex_testreg_render_events counter"),
            std::string::npos);
  EXPECT_NE(text.find("autoindex_testreg_render_events 3"),
            std::string::npos);
  EXPECT_NE(text.find("autoindex_testreg_render_depth -2"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE autoindex_testreg_render_lat_us histogram"),
            std::string::npos);
  // Buckets render cumulative: value 5 -> le="7"; 300 joins at le="511".
  EXPECT_NE(text.find("autoindex_testreg_render_lat_us_bucket{le=\"7\"} 1"),
            std::string::npos);
  EXPECT_NE(
      text.find("autoindex_testreg_render_lat_us_bucket{le=\"511\"} 2"),
      std::string::npos);
  EXPECT_NE(text.find("autoindex_testreg_render_lat_us_count 2"),
            std::string::npos);
  EXPECT_NE(text.find("autoindex_testreg_render_lat_us_sum 305"),
            std::string::npos);
  registry.ResetForTest();
}

// --- validator ----------------------------------------------------------

TEST(MetricsValidator, PassesOnHealthyRegistry) {
  auto& registry = MetricsRegistry::Default();
  registry.ResetForTest();
  registry.GetCounter("testval.ok")->Add(3);
  registry.GetHistogram("testval.lat_us")->Record(50);
  CheckReport report;
  RunMetricsValidator(&report);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_GT(report.structures_checked(), 0u);
  registry.ResetForTest();
}

TEST(MetricsValidator, FlagsCorruptHistogramCount) {
  if constexpr (!util::kMetricsEnabled) GTEST_SKIP();
  auto& registry = MetricsRegistry::Default();
  registry.ResetForTest();
  auto* hist = registry.GetHistogram("testval.corrupt_us");
  hist->Record(10);
  // Corruption drill: inflate the count without touching buckets, which
  // breaks bucket_sum >= count.
  hist->TestOnlyCorruptCount(5);
  CheckReport report;
  RunMetricsValidator(&report);
  ASSERT_FALSE(report.ok());
  bool found = false;
  for (const CheckIssue& issue : report.issues()) {
    if (issue.detail.find("testval.corrupt_us") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << report.ToString();
  registry.ResetForTest();  // heals: zeroed count == zeroed buckets
  CheckReport clean;
  RunMetricsValidator(&clean);
  EXPECT_TRUE(clean.ok()) << clean.ToString();
}

MetricsRegistry::MetricValue CounterValue(const std::string& name,
                                          uint64_t v) {
  MetricsRegistry::MetricValue m;
  m.name = name;
  m.kind = MetricsRegistry::Kind::kCounter;
  m.counter = v;
  return m;
}

TEST(MetricsValidator, MonotonePairCatchesBackwardCounters) {
  std::vector<MetricsRegistry::MetricValue> before = {
      CounterValue("a.events", 10), CounterValue("b.events", 3)};
  std::vector<MetricsRegistry::MetricValue> after = {
      CounterValue("a.events", 12), CounterValue("b.events", 3),
      CounterValue("c.new", 1)};  // c.new registered between snapshots: fine
  CheckReport ok_report;
  MetricsValidator::CheckMonotonePair(before, after, &ok_report);
  EXPECT_TRUE(ok_report.ok()) << ok_report.ToString();
  EXPECT_EQ(ok_report.structures_checked(), 2u);

  after[0].counter = 9;  // went backwards
  CheckReport bad_report;
  MetricsValidator::CheckMonotonePair(before, after, &bad_report);
  ASSERT_FALSE(bad_report.ok());
  EXPECT_NE(bad_report.issues()[0].detail.find("a.events"),
            std::string::npos);
}

TEST(MetricsValidator, MonotonePairCatchesShrinkingHistogram) {
  MetricsRegistry::MetricValue h;
  h.name = "lat_us";
  h.kind = MetricsRegistry::Kind::kHistogram;
  h.hist.count = 10;
  h.hist.sum_us = 1000;
  h.hist.max_us = 500;
  MetricsRegistry::MetricValue shrunk = h;
  shrunk.hist.count = 9;
  CheckReport report;
  MetricsValidator::CheckMonotonePair({h}, {shrunk}, &report);
  EXPECT_FALSE(report.ok());
}

// --- end-to-end: mixed workload populates every hot-path series ---------

uint64_t CounterOf(const std::vector<MetricsRegistry::MetricValue>& snap,
                   const std::string& name) {
  for (const auto& m : snap) {
    if (m.name == name) return m.counter;
  }
  return 0;
}

uint64_t HistCountOf(const std::vector<MetricsRegistry::MetricValue>& snap,
                     const std::string& name) {
  for (const auto& m : snap) {
    if (m.name == name) return m.hist.count;
  }
  return 0;
}

TEST(MetricsEndToEnd, MixedWorkloadPopulatesSubsystemSeries) {
  if constexpr (!util::kMetricsEnabled) GTEST_SKIP();
  MetricsRegistry::Default().ResetForTest();

  const std::string dir = std::string(::testing::TempDir()) + "/metrics_e2e";
  ::mkdir(dir.c_str(), 0755);
  std::remove(persist::WalPath(dir).c_str());

  Database db;
  ASSERT_TRUE(
      db.CreateTable("orders", Schema({{"id", ValueType::kInt},
                                       {"customer", ValueType::kInt},
                                       {"amount", ValueType::kInt}}))
          .ok());
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(db.Execute(StrFormat("INSERT INTO orders VALUES (%d, %d, %d)",
                                     i, i % 40, i * 3))
                    .ok());
  }
  db.Analyze();

  // Attach a WAL (fsync on append so both wal series move).
  StatusOr<uint64_t> saved = persist::SaveSnapshot(&db, nullptr, dir);
  ASSERT_TRUE(saved.ok()) << saved.status().ToString();
  persist::WalOptions wal_options;
  wal_options.fsync_each_append = true;
  StatusOr<std::unique_ptr<persist::Wal>> wal =
      persist::Wal::Create(persist::WalPath(dir), *saved, wal_options);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  db.set_durability_log(wal->get());

  AutoIndexConfig config;
  config.learn_cost_model = false;
  AutoIndexManager manager(&db, config);
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(manager
                    .ExecuteAndObserve(StrFormat(
                        "SELECT amount FROM orders WHERE customer = %d",
                        i % 40))
                    .ok());
    ASSERT_TRUE(
        manager
            .ExecuteAndObserve(StrFormat(
                "INSERT INTO orders VALUES (%d, %d, %d)", 1000 + i, i, i))
            .ok());
  }
  manager.RunManagementRound(/*apply=*/false);

  // Online index build phases.
  IndexDef def;
  def.table = "orders";
  def.columns = {"customer"};
  ASSERT_TRUE(db.CreateIndex(def).ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        db.Execute("SELECT amount FROM orders WHERE customer = 7").ok());
  }
  db.set_durability_log(nullptr);

  const auto snap = db.MetricsSnapshot();
  EXPECT_GT(CounterOf(snap, "engine.statements"), 0u);
  EXPECT_GT(HistCountOf(snap, "engine.statement_us"), 0u);
  EXPECT_GT(CounterOf(snap, "executor.statements"), 0u);
  EXPECT_GT(CounterOf(snap, "executor.rows_returned"), 0u);
  EXPECT_GT(CounterOf(snap, "latch.acquisitions"), 0u);
  EXPECT_GT(HistCountOf(snap, "latch.hold_us"), 0u);
  EXPECT_GT(CounterOf(snap, "wal.appends"), 0u);
  EXPECT_GT(CounterOf(snap, "wal.fsyncs"), 0u);
  EXPECT_GT(CounterOf(snap, "wal.append_bytes"), 0u);
  EXPECT_EQ(CounterOf(snap, "index.builds"), 1u);
  EXPECT_EQ(HistCountOf(snap, "index.build.total_us"), 1u);
  EXPECT_EQ(HistCountOf(snap, "index.build.scan_us"), 1u);
  EXPECT_GT(CounterOf(snap, "estimator.cache.misses"), 0u);
  EXPECT_EQ(CounterOf(snap, "tuning.rounds"), 1u);
  EXPECT_GT(CounterOf(snap, "tuning.observations"), 0u);
  EXPECT_GT(CounterOf(snap, "mcts.runs"), 0u);

  // The per-operator breakdown exists for the scans the SELECTs ran.
  bool has_operator_series = false;
  for (const auto& m : snap) {
    if (m.name.rfind("executor.op.", 0) == 0) has_operator_series = true;
  }
  EXPECT_TRUE(has_operator_series);

  // Full structural check (includes the MetricsValidator) stays green.
  const CheckReport report = CheckAll(db);
  EXPECT_TRUE(report.ok()) << report.ToString();

  // Prefix-filtered render for the shell's `\metrics wal.` path.
  const std::string wal_text = db.RenderMetricsText("wal.");
  EXPECT_NE(wal_text.find("autoindex_wal_appends"), std::string::npos);
  EXPECT_EQ(wal_text.find("autoindex_engine"), std::string::npos);

  MetricsRegistry::Default().ResetForTest();
}

// --- driver latency accounting ------------------------------------------

std::unique_ptr<Database> MakeDriverDb() {
  auto db = std::make_unique<Database>();
  EXPECT_TRUE(
      db->CreateTable("t", Schema({{"a", ValueType::kInt}})).ok());
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(
        db->Execute(StrFormat("INSERT INTO t VALUES (%d)", i)).ok());
  }
  db->Analyze();
  return db;
}

TEST(DriverLatency, ClosedLoopResponseEqualsService) {
  if constexpr (!util::kMetricsEnabled) GTEST_SKIP();
  std::unique_ptr<Database> db = MakeDriverDb();
  AutoIndexManager manager(db.get());
  DriverConfig config;
  config.client_threads = 2;
  config.background_tuning = false;
  config.pace_us = 0;  // closed loop: no schedule, response == service
  const std::vector<std::string> trace(200, "SELECT a FROM t WHERE a = 7");
  const DriverReport report = RunConcurrentWorkload(&manager, trace, config);
  EXPECT_EQ(report.Aggregate().queries, 200u);
  EXPECT_EQ(report.service_latency.count, 200u);
  EXPECT_EQ(report.response_latency.count, report.service_latency.count);
  EXPECT_EQ(report.response_latency.sum_us, report.service_latency.sum_us);
  EXPECT_EQ(report.response_latency.max_us, report.service_latency.max_us);
  EXPECT_EQ(report.response_latency.buckets, report.service_latency.buckets);
}

TEST(DriverLatency, InjectedStallShiftsResponseNotService) {
  if constexpr (!util::kMetricsEnabled) GTEST_SKIP();
  // Open-loop replay on a fixed schedule while the main thread freezes the
  // table under an exclusive latch mid-run. A closed-loop (service-time)
  // measurement hides the stall — only the handful of queries issued
  // during it wait; the response-time distribution charges the stall to
  // every query that was *scheduled* during it (coordinated omission).
  std::unique_ptr<Database> db = MakeDriverDb();
  AutoIndexManager manager(db.get());
  DriverConfig config;
  config.client_threads = 1;
  config.background_tuning = false;
  config.pace_us = 500;  // 600 queries on a ~300 ms schedule
  const std::vector<std::string> trace(600, "SELECT a FROM t WHERE a = 7");

  DriverReport report;
  std::thread runner([&] {
    report = RunConcurrentWorkload(&manager, trace, config);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  {
    LatchManager::Guard guard = db->latches().AcquireExclusive("t");
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  runner.join();

  ASSERT_EQ(report.response_latency.count, 600u);
  const uint64_t response_p50 = report.response_latency.P50Us();
  const uint64_t service_p50 = report.service_latency.P50Us();
  // Most of the schedule fell inside or behind the 200 ms stall, so the
  // response median carries it...
  EXPECT_GE(response_p50, 10000u);
  // ...while the service median stays at the per-query execution time
  // (only the one query actually blocked on the latch pays the stall).
  EXPECT_GE(response_p50, 4 * std::max<uint64_t>(service_p50, 1000));
  // The worst response saw most of the stall window.
  EXPECT_GE(report.response_latency.max_us, 100000u);
}

}  // namespace
}  // namespace autoindex
