// Wire-protocol unit tests (DESIGN.md §12): every message type must
// round-trip Encode -> Decode byte-exactly in meaning, and every way a
// frame can be damaged — truncation, CRC corruption, a lying length
// field, bad magic, trailing bytes, an unknown type — must surface as a
// clean Status, never UB or an allocation bomb. A randomized frame
// fuzzer (printed seed, reproducible) hammers the decoder with both
// arbitrary bytes and single-byte mutations of valid frames.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "net/protocol.h"
#include "persist/serde.h"
#include "util/random.h"

namespace autoindex {
namespace net {
namespace {

ExecStats SampleStats() {
  ExecStats stats;
  stats.heap_pages_read = 11;
  stats.index_pages_read = 7;
  stats.tuples_examined = 1234;
  stats.index_tuples_read = 56;
  stats.rows_returned = 42;
  stats.sort_rows = 9;
  stats.pages_written = 3;
  stats.index_entries_written = 21;
  stats.index_pages_written = 2;
  stats.maint_cpu_cost = 1.5;
  stats.used_index = true;
  return stats;
}

void ExpectStatsEq(const ExecStats& a, const ExecStats& b) {
  EXPECT_EQ(a.heap_pages_read, b.heap_pages_read);
  EXPECT_EQ(a.index_pages_read, b.index_pages_read);
  EXPECT_EQ(a.tuples_examined, b.tuples_examined);
  EXPECT_EQ(a.index_tuples_read, b.index_tuples_read);
  EXPECT_EQ(a.rows_returned, b.rows_returned);
  EXPECT_EQ(a.sort_rows, b.sort_rows);
  EXPECT_EQ(a.pages_written, b.pages_written);
  EXPECT_EQ(a.index_entries_written, b.index_entries_written);
  EXPECT_EQ(a.index_pages_written, b.index_pages_written);
  EXPECT_DOUBLE_EQ(a.maint_cpu_cost, b.maint_cpu_cost);
  EXPECT_EQ(a.used_index, b.used_index);
}

Message RoundTrip(const Message& in) {
  const std::string frame = EncodeFrame(in);
  Message out;
  size_t consumed = 0;
  const Status decoded = DecodeFrame(frame, &out, &consumed);
  EXPECT_TRUE(decoded.ok()) << decoded.ToString();
  EXPECT_EQ(consumed, frame.size());
  EXPECT_EQ(out.type, in.type);
  return out;
}

TEST(NetProtocol, HelloRoundTrip) {
  const Message out = RoundTrip(Message::Hello());
  EXPECT_EQ(out.protocol_version, kProtocolVersion);
}

TEST(NetProtocol, HelloOkRoundTrip) {
  const Message out = RoundTrip(Message::HelloOk(987654321));
  EXPECT_EQ(out.protocol_version, kProtocolVersion);
  EXPECT_EQ(out.session_id, 987654321u);
}

TEST(NetProtocol, QueryRoundTrip) {
  const Message out =
      RoundTrip(Message::Query("SELECT * FROM t WHERE a = 'x;\\n\x01'"));
  EXPECT_EQ(out.sql, "SELECT * FROM t WHERE a = 'x;\\n\x01'");
}

TEST(NetProtocol, SimpleTypesRoundTrip) {
  for (MessageType type :
       {MessageType::kPing, MessageType::kPong, MessageType::kQuit,
        MessageType::kBye, MessageType::kShutdown}) {
    RoundTrip(Message::Simple(type));
  }
}

TEST(NetProtocol, BusyAndErrorCarryText) {
  EXPECT_EQ(RoundTrip(Message::Busy("server busy: too many connections")).text,
            "server busy: too many connections");
  EXPECT_EQ(RoundTrip(Message::Error("protocol violation")).text,
            "protocol violation");
}

TEST(NetProtocol, ResultRoundTripWithRowsStatsIndexes) {
  Message in;
  in.type = MessageType::kResult;
  in.status_code = StatusCode::kOk;
  in.rows = {
      {Value(int64_t(1)), Value(2.5), Value("abc"), Value::Null()},
      {Value(int64_t(-7)), Value(0.0), Value(""), Value(int64_t(0))},
  };
  in.stats = SampleStats();
  in.indexes_used = {"t.a", "t.b_c"};

  const Message out = RoundTrip(in);
  EXPECT_EQ(out.status_code, StatusCode::kOk);
  ASSERT_EQ(out.rows.size(), in.rows.size());
  for (size_t i = 0; i < in.rows.size(); ++i) {
    EXPECT_EQ(CompareRows(out.rows[i], in.rows[i]), 0) << "row " << i;
  }
  ExpectStatsEq(out.stats, in.stats);
  EXPECT_EQ(out.indexes_used, in.indexes_used);
}

TEST(NetProtocol, FailedResultRoundTrip) {
  const Message out = RoundTrip(Message::FailedResult(
      Status(StatusCode::kInvalidArgument, "no such table nope")));
  EXPECT_EQ(out.status_code, StatusCode::kInvalidArgument);
  EXPECT_EQ(out.status_message, "no such table nope");
  EXPECT_TRUE(out.rows.empty());
}

TEST(NetProtocol, EmptyResultRoundTrip) {
  Message in;
  in.type = MessageType::kResult;
  const Message out = RoundTrip(in);
  EXPECT_TRUE(out.rows.empty());
  EXPECT_TRUE(out.indexes_used.empty());
}

// --- Minor-version compatibility (minor 1: metrics + trace fields) ----

// Decodes `in`'s payload with its last `strip` bytes removed — exactly
// the bytes a minor-0 peer would never have appended.
Message DecodeWithoutTail(const Message& in, size_t strip) {
  const std::string frame = EncodeFrame(in);
  std::string payload = frame.substr(kFrameHeaderBytes);
  EXPECT_GT(payload.size(), strip);
  payload.resize(payload.size() - strip);
  Message out;
  const Status s = DecodePayload(
      payload.data(), payload.size(),
      persist::Crc32(payload.data(), payload.size()), &out);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return out;
}

TEST(NetProtocol, HandshakeCarriesMinorVersion) {
  EXPECT_EQ(RoundTrip(Message::Hello()).protocol_minor,
            kProtocolMinorVersion);
  EXPECT_EQ(RoundTrip(Message::HelloOk(7)).protocol_minor,
            kProtocolMinorVersion);
}

TEST(NetProtocol, QueryAndResultCarryTraceIdentity) {
  Message query = Message::Query("SELECT 1");
  query.client_trace_id = 0xDEADBEEFu;
  EXPECT_EQ(RoundTrip(query).client_trace_id, 0xDEADBEEFu);

  Message result;
  result.type = MessageType::kResult;
  result.trace_id = 42;
  result.trace_span_count = 17;
  const Message out = RoundTrip(result);
  EXPECT_EQ(out.trace_id, 42u);
  EXPECT_EQ(out.trace_span_count, 17u);
}

TEST(NetProtocol, MetricsRequestResponseRoundTrip) {
  EXPECT_EQ(RoundTrip(Message::MetricsRequest("wal.")).text, "wal.");
  EXPECT_EQ(RoundTrip(Message::MetricsRequest("")).text, "");
  const std::string exposition =
      "# TYPE autoindex_x counter\nautoindex_x 1\n";
  EXPECT_EQ(RoundTrip(Message::MetricsResponse(exposition)).text,
            exposition);
}

TEST(NetProtocol, Minor0PeerFramesStillDecode) {
  // A minor-0 peer sends Hello/HelloOk without the minor field, kQuery
  // without the trace id, kResult without the trace tail. Each must
  // decode with the optional fields at their zero defaults — not as a
  // trailing-bytes/short-read protocol error.
  const Message hello = DecodeWithoutTail(Message::Hello(), 4);
  EXPECT_EQ(hello.protocol_version, kProtocolVersion);
  EXPECT_EQ(hello.protocol_minor, 0u);

  const Message hello_ok = DecodeWithoutTail(Message::HelloOk(9), 4);
  EXPECT_EQ(hello_ok.session_id, 9u);
  EXPECT_EQ(hello_ok.protocol_minor, 0u);

  Message traced = Message::Query("SELECT 1");
  traced.client_trace_id = 99;
  const Message query = DecodeWithoutTail(traced, 8);
  EXPECT_EQ(query.sql, "SELECT 1");
  EXPECT_EQ(query.client_trace_id, 0u);

  Message result;
  result.type = MessageType::kResult;
  result.trace_id = 42;
  result.trace_span_count = 3;
  const Message old_result = DecodeWithoutTail(result, 12);
  EXPECT_EQ(old_result.trace_id, 0u);
  EXPECT_EQ(old_result.trace_span_count, 0u);
}

// --- Damage rejection -------------------------------------------------

TEST(NetProtocol, TruncatedFramesRejected) {
  const std::string frame = EncodeFrame(Message::Query("SELECT 1"));
  // Every proper prefix must fail cleanly; none may crash or succeed.
  for (size_t len = 0; len < frame.size(); ++len) {
    Message out;
    const Status s = DecodeFrame(frame.substr(0, len), &out);
    EXPECT_FALSE(s.ok()) << "prefix of " << len << " bytes decoded";
  }
}

TEST(NetProtocol, CrcCorruptionRejected) {
  const std::string frame = EncodeFrame(Message::Query("SELECT 1"));
  // Flip one bit in each payload byte: the CRC check must catch all.
  for (size_t i = kFrameHeaderBytes; i < frame.size(); ++i) {
    std::string bad = frame;
    bad[i] = static_cast<char>(bad[i] ^ 0x40);
    Message out;
    EXPECT_FALSE(DecodeFrame(bad, &out).ok()) << "corrupt byte " << i;
  }
}

TEST(NetProtocol, BadMagicRejected) {
  std::string frame = EncodeFrame(Message::Simple(MessageType::kPing));
  frame[0] = 'X';
  Message out;
  const Status s = DecodeFrame(frame, &out);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(NetProtocol, OversizedLengthRejected) {
  // A lying length field larger than kMaxFrameBytes must be rejected at
  // the header — before any allocation of that size.
  std::string frame = EncodeFrame(Message::Simple(MessageType::kPing));
  const uint32_t huge = kMaxFrameBytes + 1;
  std::memcpy(&frame[4], &huge, sizeof(huge));
  uint32_t payload_len = 0, crc = 0;
  const Status s = ParseFrameHeader(frame.data(), &payload_len, &crc);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(NetProtocol, TrailingBytesRejected) {
  // Payload longer than the message body, with a *valid* CRC over the
  // padded bytes: frames are exact, not padded, so this is a protocol
  // error even though the checksum passes.
  const std::string good = EncodeFrame(Message::Simple(MessageType::kPing));
  std::string payload = good.substr(kFrameHeaderBytes);
  payload += '\0';
  Message out;
  const Status s =
      DecodePayload(payload.data(), payload.size(),
                    persist::Crc32(payload.data(), payload.size()), &out);
  EXPECT_FALSE(s.ok());
}

TEST(NetProtocol, UnknownTypeRejected) {
  // A payload whose type byte is not a known MessageType.
  const std::string payload(1, static_cast<char>(0xEE));
  Message out;
  const Status s = DecodePayload(
      payload.data(), payload.size(),
      persist::Crc32(payload.data(), payload.size()), &out);
  EXPECT_FALSE(s.ok());
}

TEST(NetProtocol, ImplausibleRowCountRejected) {
  // A kResult payload claiming 2^31 rows in a few bytes must be refused
  // before any proportional allocation happens.
  persist::Writer w;
  w.PutU8(static_cast<uint8_t>(MessageType::kResult));
  w.PutU8(static_cast<uint8_t>(StatusCode::kOk));
  w.PutString("");
  w.PutU32(0x80000000u);  // rows "count"
  const std::string& payload = w.buffer();
  Message out;
  const Status s = DecodePayload(
      payload.data(), payload.size(),
      persist::Crc32(payload.data(), payload.size()), &out);
  EXPECT_FALSE(s.ok());
}

// --- Fuzz -------------------------------------------------------------

#ifdef AUTOINDEX_SANITIZE_BUILD
constexpr int kFuzzTrials = 20000;
#else
constexpr int kFuzzTrials = 5000;
#endif

// Seeds are pure functions of the test parameter — reproducible; the
// printed seed alone replays the exact trial stream.
Random SeededRng(uint64_t seed) {
  std::cout << "[fuzz] seed=" << seed << " trials=" << kFuzzTrials << "\n";
  return Random(seed);
}

TEST(NetProtocolFuzz, RandomBytesNeverCrash) {
  Random rng = SeededRng(0xA1B2C3D4);
  for (int trial = 0; trial < kFuzzTrials; ++trial) {
    const size_t len = rng.Uniform(64);
    std::string frame(len, '\0');
    for (size_t i = 0; i < len; ++i) {
      frame[i] = static_cast<char>(rng.Uniform(256));
    }
    Message out;
    // Must terminate with some status; random bytes essentially never
    // form a valid CRC-framed message, but either way: no crash.
    DecodeFrame(frame, &out).ok();
  }
}

TEST(NetProtocolFuzz, MutatedValidFramesNeverCrash) {
  Random rng = SeededRng(0x5EED5EED);
  Message result;
  result.type = MessageType::kResult;
  result.rows = {{Value(int64_t(1)), Value("payload"), Value(2.0)}};
  result.stats = SampleStats();
  result.indexes_used = {"t.a"};
  const std::string frames[] = {
      EncodeFrame(Message::Hello()),
      EncodeFrame(Message::Query("SELECT * FROM t WHERE a = 1")),
      EncodeFrame(result),
  };
  for (int trial = 0; trial < kFuzzTrials; ++trial) {
    std::string frame = frames[rng.Uniform(3)];
    // 1-3 random single-byte mutations anywhere in the frame.
    const int mutations = 1 + static_cast<int>(rng.Uniform(3));
    for (int m = 0; m < mutations; ++m) {
      frame[rng.Uniform(frame.size())] =
          static_cast<char>(rng.Uniform(256));
    }
    Message out;
    DecodeFrame(frame, &out).ok();  // no crash, no hang — status either way
  }
}

}  // namespace
}  // namespace net
}  // namespace autoindex
