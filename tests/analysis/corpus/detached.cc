// detached-thread fixture: detach() severs the join that shutdown
// ordering depends on.

#include <thread>

namespace corpus {

void FireAndForget() {
  std::thread worker([] {});
  worker.detach();  // lint:expect(detached-thread)
}

void FireAndForgetPointer(std::thread* worker) {
  worker->detach();  // lint:expect(detached-thread)
}

// A joined thread is the sanctioned shape.
void FireAndJoin() {
  std::thread worker([] {});
  worker.join();
}

}  // namespace corpus
