// naked-mutex fixture: raw std synchronization primitives that Clang
// thread-safety analysis cannot see.

#include <mutex>

namespace corpus {

struct Counter {
  std::mutex mu;  // lint:expect(naked-mutex)
  int value = 0;

  void Bump() {
    std::lock_guard<std::mutex> lock(mu);  // lint:expect(naked-mutex)
    ++value;
  }
};

}  // namespace corpus
