// raw-new-delete fixture: both directions of manual ownership.

namespace corpus {

struct Widget {
  int value = 0;
};

Widget* MakeWidget() {
  return new Widget();  // lint:expect(raw-new-delete)
}

void DestroyWidget(Widget* w) {
  delete w;  // lint:expect(raw-new-delete)
}

// Prose mentioning new Widget() in a comment must not fire, nor must a
// string literal: the code view blanks both.
const char* kDoc = "allocate with new Widget()";

}  // namespace corpus
