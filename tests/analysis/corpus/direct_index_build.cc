// direct-index-build fixture: IndexManager DDL entry points driven from
// outside the Database facade, plus the facade-call spellings that must
// stay clean.

#include "corpus_api.h"

namespace corpus {

struct IndexManager {
  int CreateIndex(int def);
  int BeginBuild(int def);
  int PublishBuild(int key);
  int FinishBuildDrain(int key);
  int AbortBuild(int key);
  int DropIndex(int key);
};

struct Database {
  int CreateIndex(int def);
  IndexManager& index_manager();
  IndexManager* index_manager_;
  IndexManager* indexes_;
};

inline int BypassesFacade(Database& db, IndexManager& indexes) {
  int sum = 0;
  sum += db.index_manager_->CreateIndex(1);  // lint:expect(direct-index-build)
  sum += db.index_manager().BeginBuild(1);   // lint:expect(direct-index-build)
  sum += db.indexes_->PublishBuild(2);       // lint:expect(direct-index-build)
  sum += indexes.FinishBuildDrain(3);        // lint:expect(direct-index-build)
  sum += indexes.AbortBuild(4);              // lint:expect(direct-index-build)
  return sum;
}

inline int UsesFacade(Database* db, IndexManager& indexes) {
  // The facade call and non-lifecycle methods are fine.
  return db->CreateIndex(1) + indexes.DropIndex(2);
}

}  // namespace corpus
