// Suppression fixture: every would-be finding here carries a matching
// `lint:allow(<rule>)` marker, so the file must come out clean. A
// marker for the wrong rule does NOT suppress (the last function).

#include "corpus_api.h"

namespace corpus {

struct Widget {
  int value = 0;
};

Widget* LegacyFactory() {
  return new Widget();  // lint:allow(raw-new-delete)
}

void LegacyFree(Widget* w) {
  delete w;  // lint:allow(raw-new-delete)
}

void DeliberatelyLossy() {
  DoWork();  // lint:allow(status-ignored)
}

void WrongMarkerDoesNotSuppress() {
  DoWork();  // lint:allow(raw-new-delete) lint:expect(status-ignored)
}

}  // namespace corpus
