#pragma once

// Self-contained stand-in API for the status-ignored fixtures: the rule
// harvests Status-returning names from scanned headers, so the corpus
// brings its own declarations and never depends on the real src/ API.

namespace corpus {

struct Status {};

Status DoWork();
Status Flush(int fd);

}  // namespace corpus
