// Clean fixture: idiomatic code that must stay silent under every rule.
// Comments and strings mentioning new Gadget(), rand(), std::mutex,
// detach(), or std::ofstream must never fire — the code view blanks
// them before the regexes run.

#include "clean.h"
#include "corpus_api.h"

namespace corpus {

const char* kProse = "never call rand() or detach(); new is banned too";

Status UseGadget() {
  std::unique_ptr<Gadget> g = MakeGadget();  /* not a raw new Gadget() */
  g->value = 7;
  return DoWork();
}

}  // namespace corpus
