// raw-chrono-metric fixture: naked chrono clock reads outside the
// sanctioned timing modules (src/util/metrics.*, src/workload/, bench/).

#include <chrono>

namespace corpus {

double AdHocTimingMs() {
  const auto start = std::chrono::steady_clock::now();  // lint:expect(raw-chrono-metric)
  volatile int sink = 0;
  for (int i = 0; i < 100; ++i) sink = sink + i;
  const auto end =
      std::chrono::steady_clock::now();  // lint:expect(raw-chrono-metric)
  return std::chrono::duration<double, std::milli>(end - start).count();
}

long WallClockStamp() {
  using std::chrono::system_clock;
  return system_clock::now()  // lint:expect(raw-chrono-metric)
      .time_since_epoch()
      .count();
}

long HighResStamp() {
  return std::chrono::high_resolution_clock::now()  // lint:expect(raw-chrono-metric)
      .time_since_epoch()
      .count();
}

// steady_clock::time_point as a type (no ::now() call) is fine — only the
// clock *read* is restricted.
std::chrono::steady_clock::time_point ZeroPoint() {
  return std::chrono::steady_clock::time_point{};
}

}  // namespace corpus
