#pragma once

// Clean fixture: nothing in this header may produce a finding. The
// driver fails the suite if any unexpected finding appears anywhere in
// the corpus, so this file pins the false-positive rate of every rule
// on idiomatic code.

#include <memory>

namespace corpus {

struct Gadget {
  int value = 0;
};

inline std::unique_ptr<Gadget> MakeGadget() {
  return std::make_unique<Gadget>();
}

}  // namespace corpus
