// raw-file-io fixture: unchecked stream IO outside src/persist/.

#include <fstream>

namespace corpus {

void DumpUnchecked(const char* path) {
  std::ofstream out(path);  // lint:expect(raw-file-io)
  out << "no checksum, no atomic rename";
}

bool SlurpUnchecked(const char* path) {
  std::ifstream in(path);  // lint:expect(raw-file-io)
  return in.good();
}

}  // namespace corpus
