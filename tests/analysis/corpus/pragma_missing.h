// lint:expect(pragma-once)
// A header missing its include-once pragma: the finding anchors at
// line 1. (The pragma must not be spelled out even in a comment here —
// the rule is a whole-file substring check.)

namespace corpus {

inline int Identity(int x) { return x; }

}  // namespace corpus
