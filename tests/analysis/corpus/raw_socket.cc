// raw-socket fixture: POSIX socket syscalls outside src/net/.

#include <functional>

namespace corpus {

int DialUnchecked(const void* addr, unsigned len) {
  int fd = socket(2, 1, 0);              // lint:expect(raw-socket)
  if (connect(fd, addr, len) != 0) {     // lint:expect(raw-socket)
    return -1;
  }
  ::send(fd, "x", 1, 0);                 // lint:expect(raw-socket)
  return fd;
}

int ServeUnchecked(const void* addr, unsigned len) {
  int fd = socket(2, 1, 0);              // lint:expect(raw-socket)
  bind(fd, addr, len);                   // lint:expect(raw-socket)
  listen(fd, 16);                        // lint:expect(raw-socket)
  return accept(fd, nullptr, nullptr);   // lint:expect(raw-socket)
}

// Member calls and std::bind are NOT raw syscalls; none of these fire.
struct Conn {
  int Send(int v) { return v; }
  int Recv(int v) { return v; }
};

int CleanMemberCalls(Conn& conn) {
  auto bound = std::bind(&Conn::Send, &conn, 1);
  return conn.Recv(0) + bound();
}

int Suppressed(const void* addr, unsigned len) {
  return connect(0, addr, len);  // lint:allow(raw-socket)
}

}  // namespace corpus
