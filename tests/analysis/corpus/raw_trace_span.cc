// raw-trace-span fixture: direct span bookkeeping outside src/obs/,
// next to the RAII spellings that must stay clean.

#include "corpus_api.h"

namespace corpus {

struct SpanRecord {
  unsigned id = 0;
  unsigned parent = 0;
};

struct TraceContext {
  unsigned StartSpan(const char* name);
  void DetachSpan(unsigned id);
  void FinishSpan(unsigned id);
  void EndSpan(unsigned id);
  void SetSpanAttr(unsigned id, const char* attr, long value);
};

struct ScopedSpan {
  explicit ScopedSpan(const char* name);
  void SetAttr(const char* name, long value);
};

struct OperatorSpan {
  void Begin(const char* name);
  void Leave();
  void End(const char* attr_name, long attr_value);
};

inline unsigned DrivesSpansDirectly() {
  TraceContext ctx;                          // lint:expect(raw-trace-span)
  unsigned id = ctx.StartSpan("scan");       // lint:expect(raw-trace-span)
  ctx.SetSpanAttr(id, "rows", 42);           // lint:expect(raw-trace-span)
  ctx.DetachSpan(id);                        // lint:expect(raw-trace-span)
  ctx.FinishSpan(id);                        // lint:expect(raw-trace-span)
  ctx.EndSpan(id);                           // lint:expect(raw-trace-span)
  SpanRecord forged{};                       // lint:expect(raw-trace-span)
  forged.parent = forged.id;
  return id + forged.parent;
}

inline long UsesRaiiHelpers(const SpanRecord& span) {
  // The RAII surface and read-only access to a recorded span are legal.
  ScopedSpan scope("scan");
  scope.SetAttr("rows", 42);
  OperatorSpan op;
  op.Begin("hash_join");
  op.Leave();
  op.End("rows_out", 7);
  return static_cast<long>(span.id) + span.parent;
}

}  // namespace corpus
