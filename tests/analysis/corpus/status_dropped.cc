// status-ignored fixture: a bare-statement call to a Status-returning
// function (declared in corpus_api.h) drops the error.

#include "corpus_api.h"

namespace corpus {

void Careless() {
  DoWork();  // lint:expect(status-ignored)
}

Status Careful() {
  // Consumed forms never fire: returned, assigned, or (void)-discarded.
  (void)Flush(3);
  Status s = DoWork();
  return s;
}

}  // namespace corpus
