#pragma once

// include-cycle fixture, half 1: includes cycle_b.h, which includes
// this header back. The finding anchors at the #include that closes
// the cycle during the (deterministic, sorted-order) DFS — the one in
// cycle_b.h.

#include "cycle_b.h"

namespace corpus {

struct A {
  int tag = 1;
};

}  // namespace corpus
