// banned-random fixture: libc randomness and wall-clock seeding.

namespace corpus {

int WeakShuffle() {
  return rand() % 6;  // lint:expect(banned-random)
}

void SeedFromClock() {
  srand(static_cast<unsigned>(time(nullptr)));  // lint:expect(banned-random)
}

// Longer identifiers that merely end in a banned name must not fire,
// and neither must member calls spelled obj.time(...).
int mytime(int zone) { return zone; }
int Runtime() { return mytime(0); }

}  // namespace corpus
