#pragma once

// include-cycle fixture, half 2: see cycle_a.h.

#include "cycle_a.h"  // lint:expect(include-cycle)

namespace corpus {

struct B {
  int tag = 2;
};

}  // namespace corpus
