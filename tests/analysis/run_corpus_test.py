#!/usr/bin/env python3
"""Self-test for the scripts/analysis framework.

Every violation line in tests/analysis/corpus/ carries a
`// lint:expect(<rule>)` marker. This driver runs the analyzer over the
corpus and demands an exact match: each rule fires on precisely its
marked lines, and nothing else fires anywhere — which also proves the
clean fixtures stay silent and `lint:allow` suppressions hold.

It then re-runs through the real CLI (scripts/lint.py --format=json) and
checks the machine-readable output carries the same findings, plus a
--rules= filter pass.

Exit 0 on success, 1 with a readable diff on failure.
"""

import json
import os
import re
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))
CORPUS = os.path.join("tests", "analysis", "corpus")

sys.path.insert(0, os.path.join(REPO_ROOT, "scripts"))

from analysis import framework  # noqa: E402

_EXPECT_RE = re.compile(r"lint:expect\(([^)]*)\)")


def expected_findings():
    expected = set()
    for rel in framework.collect_files([CORPUS], REPO_ROOT):
        path = os.path.join(REPO_ROOT, rel)
        with open(path, encoding="utf-8") as f:
            for lineno, raw in enumerate(f, start=1):
                m = _EXPECT_RE.search(raw)
                if not m:
                    continue
                for rule in m.group(1).split(","):
                    rule = rule.strip()
                    if rule:
                        expected.add(
                            (rel.replace(os.sep, "/"), lineno, rule))
    return expected


def report_diff(name, expected, actual):
    ok = True
    for miss in sorted(expected - actual):
        print("%s: MISSING  %s:%d [%s] (marked, did not fire)" %
              ((name,) + miss))
        ok = False
    for extra in sorted(actual - expected):
        print("%s: SPURIOUS %s:%d [%s] (fired on an unmarked line)" %
              ((name,) + extra))
        ok = False
    return ok


def main():
    expected = expected_findings()
    if not expected:
        print("corpus: no lint:expect markers found — corpus missing?")
        return 1

    ok = True

    # --- Pass 1: framework API, every rule, exact match. ---
    findings, files, rules = framework.run([CORPUS], root=REPO_ROOT)
    actual = {(f.file, f.line, f.rule) for f in findings}
    ok &= report_diff("framework", expected, actual)

    # Every bundled rule must be exercised by at least one fixture.
    untested = set(rules) - {r for (_, _, r) in expected}
    for rule in sorted(untested):
        print("corpus: rule %r has no fixture marking it" % rule)
        ok = False

    # --- Pass 2: the real CLI with machine-readable output. ---
    cli = subprocess.run(
        [sys.executable, os.path.join("scripts", "lint.py"),
         "--format=json", CORPUS],
        cwd=REPO_ROOT, capture_output=True, text=True)
    if cli.returncode != 1:
        print("cli: expected exit 1 on a dirty tree, got %d\nstderr: %s" %
              (cli.returncode, cli.stderr))
        ok = False
    else:
        doc = json.loads(cli.stdout)
        for key in ("findings", "files_scanned", "rules", "ok"):
            if key not in doc:
                print("cli: JSON output missing key %r" % key)
                ok = False
        if doc.get("ok") is not False:
            print("cli: 'ok' should be false on a dirty tree")
            ok = False
        cli_actual = {(f["file"], f["line"], f["rule"])
                      for f in doc.get("findings", [])}
        ok &= report_diff("cli-json", expected, cli_actual)

    # --- Pass 3: --rules= filtering narrows to the named rule. ---
    only, _, _ = framework.run([CORPUS], rule_names=["naked-mutex"],
                               root=REPO_ROOT)
    only_actual = {(f.file, f.line, f.rule) for f in only}
    want = {e for e in expected if e[2] == "naked-mutex"}
    ok &= report_diff("rules-filter", want, only_actual)

    if ok:
        print("corpus: OK (%d fixtures, %d expected findings, %d rules)" %
              (len(files), len(expected), len(rules)))
        return 0
    return 1


if __name__ == "__main__":
    sys.exit(main())
