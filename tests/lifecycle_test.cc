// Online index lifecycle (DESIGN.md §10): a build that runs concurrently
// with writer sessions publishes an index entry-for-entry identical to a
// from-scratch rebuild; in-flight builds stay invisible to the planner
// and to checkpoints (crash mid-build recovers to "index absent");
// aborted builds leak nothing; the async tuning apply path stages DDL and
// publishes it in the background; and the LifecycleValidator actually
// fires on injected lifecycle corruption.

#include <gtest/gtest.h>
#include <sys/stat.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "check/validator.h"
#include "core/manager.h"
#include "engine/database.h"
#include "engine/session.h"
#include "persist/snapshot.h"
#include "workload/epidemic.h"
#include "workload/workload.h"

namespace autoindex {
namespace {

using Entry = std::pair<Row, RowId>;

bool EntryLess(const Entry& a, const Entry& b) {
  const int cmp = CompareRows(a.first, b.first);
  if (cmp != 0) return cmp < 0;
  return a.second < b.second;
}

// The (key, rid) list a from-scratch rebuild of `index` would produce.
std::vector<Entry> RebuildEntries(const HeapTable& table,
                                  const BuiltIndex& index) {
  std::vector<Entry> out;
  table.Scan([&](RowId rid, const Row& row) {
    out.emplace_back(index.KeyFromRow(row), rid);
  });
  std::sort(out.begin(), out.end(), EntryLess);
  return out;
}

// The (key, rid) list the index actually holds.
std::vector<Entry> IndexEntries(const BuiltIndex& index) {
  std::vector<Entry> out;
  index.Scan(nullptr, nullptr, true, nullptr, true,
             [&](const Row& key, RowId rid) {
               out.emplace_back(key, rid);
               return true;
             });
  std::sort(out.begin(), out.end(), EntryLess);
  return out;
}

void ExpectEntriesEqual(const std::vector<Entry>& expected,
                        const std::vector<Entry>& actual) {
  ASSERT_EQ(expected.size(), actual.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(expected[i].second, actual[i].second) << "at sorted entry " << i;
    ASSERT_EQ(CompareRows(expected[i].first, actual[i].first), 0)
        << "at sorted entry " << i;
  }
}

bool ReportMentions(const CheckReport& report, const std::string& needle) {
  return std::any_of(report.issues().begin(), report.issues().end(),
                     [&](const CheckIssue& issue) {
                       return issue.detail.find(needle) != std::string::npos;
                     });
}

std::string FreshDir(const char* name) {
  const std::string dir = std::string(::testing::TempDir()) + "/" + name;
  ::mkdir(dir.c_str(), 0755);
  std::remove(persist::CheckpointPath(dir).c_str());
  std::remove((persist::CheckpointPath(dir) + ".tmp").c_str());
  std::remove(persist::WalPath(dir).c_str());
  return dir;
}

class LifecycleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto created = db_.CreateTable("t", Schema({{"a", ValueType::kInt},
                                                {"b", ValueType::kInt},
                                                {"c", ValueType::kInt}}));
    ASSERT_TRUE(created.ok());
    std::vector<Row> rows;
    rows.reserve(kInitialRows);
    for (int i = 0; i < kInitialRows; ++i) {
      rows.push_back({Value(int64_t(i)), Value(int64_t(i % 997)),
                      Value(int64_t(i % 7))});
    }
    ASSERT_TRUE(db_.BulkInsert("t", std::move(rows)).ok());
    db_.Analyze();
  }

  static constexpr int kInitialRows = 12000;
  Database db_;
};

// --- The tentpole guarantee: concurrent build correctness ---------------

// The TSan-gated stress: N writer sessions mutate the table (inserts,
// key-changing updates, deletes) for the whole duration of an online
// CreateIndex. The published index must match a from-scratch rebuild
// entry-for-entry, and every validator must pass.
TEST_F(LifecycleTest, OnlineBuildUnderConcurrentWriters) {
  constexpr int kWriters = 4;
  std::atomic<bool> done{false};
  std::atomic<size_t> writes{0};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([this, w, &done, &writes] {
      std::unique_ptr<Session> session = db_.CreateSession();
      int64_t next_insert = 1000000 + w;  // ids disjoint from the seed rows
      for (int i = 0; !done.load(std::memory_order_acquire); ++i) {
        const int64_t target = (w * 3001 + i * 17) % kInitialRows;
        std::string sql;
        switch (i % 3) {
          case 0:
            sql = "INSERT INTO t VALUES (" + std::to_string(next_insert) +
                  ", " + std::to_string(i % 997) + ", " +
                  std::to_string(i % 7) + ")";
            next_insert += kWriters;
            break;
          case 1:
            // Key-changing update: lands in the build's delta buffer.
            sql = "UPDATE t SET b = " + std::to_string((i * 13) % 997) +
                  " WHERE a = " + std::to_string(target);
            break;
          default:
            sql = "DELETE FROM t WHERE a = " + std::to_string(target);
            break;
        }
        ASSERT_TRUE(session->Execute(sql).ok()) << sql;
        writes.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Let the writers get going, then build online while they hammer.
  while (writes.load(std::memory_order_acquire) < 50) {
    std::this_thread::yield();
  }
  const IndexDef def("t", {"b"});
  ASSERT_TRUE(db_.CreateIndex(def).ok());
  done.store(true, std::memory_order_release);
  for (std::thread& thread : writers) thread.join();

  // Published and planner-visible.
  ASSERT_EQ(db_.index_manager().num_indexes(), 1u);
  const BuiltIndex* index = db_.index_manager().AllIndexes()[0];
  EXPECT_EQ(index->state(), IndexState::kReady);
  EXPECT_EQ(index->delta_pending(), 0u);

  // Differential: identical to a from-scratch rebuild of the final heap.
  const HeapTable* table = db_.catalog().GetTable("t");
  ExpectEntriesEqual(RebuildEntries(*table, *index), IndexEntries(*index));

  const CheckReport report = CheckAll(db_);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

// Same stress against the blocking build: the baseline path must stay
// correct too (it serializes writers instead of absorbing them).
TEST_F(LifecycleTest, BlockingBuildUnderConcurrentWriters) {
  std::atomic<bool> done{false};
  std::thread writer([this, &done] {
    std::unique_ptr<Session> session = db_.CreateSession();
    for (int i = 0; !done.load(std::memory_order_acquire); ++i) {
      const std::string sql =
          "UPDATE t SET b = " + std::to_string(i % 997) + " WHERE a = " +
          std::to_string((i * 31) % kInitialRows);
      ASSERT_TRUE(session->Execute(sql).ok());
    }
  });
  ASSERT_TRUE(db_.CreateIndexBlocking(IndexDef("t", {"b"})).ok());
  done.store(true, std::memory_order_release);
  writer.join();

  const BuiltIndex* index = db_.index_manager().AllIndexes()[0];
  const HeapTable* table = db_.catalog().GetTable("t");
  ExpectEntriesEqual(RebuildEntries(*table, *index), IndexEntries(*index));
  const CheckReport report = CheckAll(db_);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

// --- In-flight visibility and the crash-mid-build contract --------------

TEST_F(LifecycleTest, BuildingIndexInvisibleToPlannerAndCheckpoints) {
  const std::string dir = FreshDir("lifecycle_midbuild");
  bool observed_caught_up = false;
  db_.set_index_build_hook([&](Database::IndexBuildPhase phase) {
    if (phase != Database::IndexBuildPhase::kCaughtUp) return;
    observed_caught_up = true;
    // Mid-build: registered (duplicate creates are refused) but not
    // planner-visible, and reads still work without it.
    EXPECT_TRUE(db_.HasIndex(IndexDef("t", {"b"})));
    EXPECT_EQ(db_.index_manager().num_indexes(), 0u);
    ASSERT_EQ(db_.index_manager().AllIndexesAnyState().size(), 1u);
    EXPECT_EQ(db_.index_manager().AllIndexesAnyState()[0]->state(),
              IndexState::kBuilding);
    auto result = db_.Execute("SELECT a FROM t WHERE b = 5");
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->indexes_used.empty());
    // Checkpoint cut mid-build = the on-disk image after a crash: the
    // index must be absent, because its WAL record only lands at publish.
    StatusOr<uint64_t> saved = persist::SaveSnapshot(&db_, nullptr, dir);
    ASSERT_TRUE(saved.ok());
  });
  ASSERT_TRUE(db_.CreateIndex(IndexDef("t", {"b"})).ok());
  ASSERT_TRUE(observed_caught_up);
  db_.set_index_build_hook(nullptr);

  Database recovered;
  persist::RecoveryReport report;
  auto wal = persist::OpenSnapshot(&recovered, nullptr, dir, &report);
  ASSERT_TRUE(wal.ok());
  EXPECT_EQ(report.indexes_rebuilt, 0u);
  EXPECT_EQ(recovered.index_manager().num_indexes(), 0u);
  EXPECT_FALSE(recovered.HasIndex(IndexDef("t", {"b"})));
  // The live database did publish.
  EXPECT_EQ(db_.index_manager().num_indexes(), 1u);
}

TEST_F(LifecycleTest, AbortedBuildLeaksNothing) {
  IndexManager& manager = db_.index_manager();
  StatusOr<BuiltIndex*> begun = manager.BeginBuild(IndexDef("t", {"b"}));
  ASSERT_TRUE(begun.ok());
  EXPECT_EQ((*begun)->state(), IndexState::kBuilding);

  // Writer maintenance reaches the registered build as buffered delta.
  ASSERT_TRUE(db_.Execute("INSERT INTO t VALUES (900001, 1, 2)").ok());
  ASSERT_TRUE(db_.Execute("DELETE FROM t WHERE a = 900001").ok());
  EXPECT_EQ((*begun)->delta_pending(), 2u);
  EXPECT_EQ((*begun)->num_entries(), 0u);  // nothing applied yet
  EXPECT_EQ(manager.num_indexes(), 0u);

  // Abandon: no state leaks, and the same definition builds again.
  ASSERT_TRUE(manager.AbortBuild(IndexDef("t", {"b"}).Key()).ok());
  EXPECT_TRUE(manager.AllIndexesAnyState().empty());
  EXPECT_FALSE(db_.HasIndex(IndexDef("t", {"b"})));
  ASSERT_TRUE(db_.CreateIndex(IndexDef("t", {"b"})).ok());
  EXPECT_EQ(manager.num_indexes(), 1u);
  const CheckReport report = CheckAll(db_);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST_F(LifecycleTest, DuplicateCreateRefusedBeforeScan) {
  ASSERT_TRUE(db_.CreateIndex(IndexDef("t", {"b"})).ok());
  // Both build paths refuse without re-scanning (AlreadyExists).
  EXPECT_FALSE(db_.CreateIndex(IndexDef("t", {"b"})).ok());
  EXPECT_FALSE(db_.CreateIndexBlocking(IndexDef("t", {"b"})).ok());
  EXPECT_FALSE(db_.index_manager().CreateIndex(IndexDef("t", {"b"})).ok());
  EXPECT_EQ(db_.index_manager().num_indexes(), 1u);
}

// --- Async tuning apply -------------------------------------------------

AutoIndexConfig FastAsyncConfig() {
  AutoIndexConfig config;
  config.mcts.iterations = 80;
  config.mcts.patience = 40;
  config.learn_cost_model = false;
  config.async_apply = true;
  return config;
}

TEST(LifecycleAsyncApplyTest, RoundStagesAndWorkerPublishes) {
  Database db;
  EpidemicConfig epidemic;
  EpidemicWorkload::Populate(&db, epidemic);
  AutoIndexManager manager(&db, FastAsyncConfig());
  RunWorkloadObserved(&manager, EpidemicWorkload::PhaseW1(epidemic, 150, 1));

  TuningResult result = manager.RunManagementRound();
  EXPECT_TRUE(result.staged);
  EXPECT_FALSE(result.applied);
  EXPECT_FALSE(result.added.empty());

  const std::vector<ApplyError> errors = manager.WaitForApply();
  EXPECT_TRUE(errors.empty());
  EXPECT_EQ(db.index_manager().num_indexes(),
            db.CurrentConfig().defs().size());
  EXPECT_GT(db.index_manager().num_indexes(), 0u);
  const CheckReport report = CheckAll(db);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(LifecycleAsyncApplyTest, ApplyErrorsAreRecordedPerDefinition) {
  Database db;
  auto created = db.CreateTable("t", Schema({{"a", ValueType::kInt}}));
  ASSERT_TRUE(created.ok());
  AutoIndexManager manager(&db, FastAsyncConfig());

  // Immediate path: one bogus drop + one bogus create, each reported.
  const IndexDef missing("t", {"nope"});
  AutoIndexManager::DdlOutcome outcome =
      manager.ApplyDdlNow({missing}, {missing});
  ASSERT_EQ(outcome.errors.size(), 2u);
  EXPECT_TRUE(outcome.errors[0].drop);
  EXPECT_FALSE(outcome.errors[1].drop);
  EXPECT_FALSE(outcome.errors[0].message.empty());
  EXPECT_TRUE(outcome.dropped.empty());
  EXPECT_TRUE(outcome.built.empty());

  // With no staged work, WaitForApply returns immediately and empty.
  const std::vector<ApplyError> none = manager.WaitForApply();
  EXPECT_TRUE(none.empty());
}

// --- Validator corruption coverage --------------------------------------

TEST_F(LifecycleTest, ValidatorDetectsEscapedNonReadyState) {
  ASSERT_TRUE(db_.CreateIndex(IndexDef("t", {"b"})).ok());
  BuiltIndex* index = db_.index_manager().AllIndexes()[0];
  index->set_state(IndexState::kBuilding);
  const CheckReport report = CheckAll(db_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(ReportMentions(report, "not ready")) << report.ToString();
  index->set_state(IndexState::kReady);
  EXPECT_TRUE(CheckAll(db_).ok());
}

TEST_F(LifecycleTest, ValidatorDetectsRebuildDivergence) {
  ASSERT_TRUE(db_.CreateIndex(IndexDef("t", {"b"})).ok());
  BuiltIndex* index = db_.index_manager().AllIndexes()[0];
  const HeapTable* table = db_.catalog().GetTable("t");
  // Swap the rids of two entries with different keys: entry counts (and
  // so the catalog validator) stay green, but the entry-for-entry
  // differential must fire.
  const Row row0 = table->Get(0);
  const Row row1 = table->Get(1);
  ASSERT_NE(CompareRows(index->KeyFromRow(row0), index->KeyFromRow(row1)), 0);
  ASSERT_TRUE(index->tree().Delete(index->KeyFromRow(row0), 0));
  ASSERT_TRUE(index->tree().Delete(index->KeyFromRow(row1), 1));
  index->tree().Insert(index->KeyFromRow(row0), 1);
  index->tree().Insert(index->KeyFromRow(row1), 0);
  const CheckReport report = CheckAll(db_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(ReportMentions(report, "diverges")) << report.ToString();
}

TEST_F(LifecycleTest, ValidatorDetectsUndrainedPublishedDelta) {
  ASSERT_TRUE(db_.CreateIndex(IndexDef("t", {"b"})).ok());
  BuiltIndex* index = db_.index_manager().AllIndexes()[0];
  // Force a delta op onto a published index: flip to building, route one
  // write through maintenance, flip back without draining.
  index->set_state(IndexState::kBuilding);
  index->InsertEntry(db_.catalog().GetTable("t")->Get(0), 0);
  index->set_state(IndexState::kReady);
  const CheckReport report = CheckAll(db_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(ReportMentions(report, "undrained")) << report.ToString();
}

}  // namespace
}  // namespace autoindex
