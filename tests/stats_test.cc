#include <gtest/gtest.h>

#include "sql/parser.h"
#include "stats/column_stats.h"
#include "stats/stats_manager.h"
#include "storage/catalog.h"
#include "util/random.h"

namespace autoindex {
namespace {

class StatsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto t = catalog_.CreateTable("t", Schema({{"u", ValueType::kInt},
                                               {"mod10", ValueType::kInt},
                                               {"s", ValueType::kString},
                                               {"n", ValueType::kInt}}));
    ASSERT_TRUE(t.ok());
    Random rng(99);
    for (int i = 0; i < 10000; ++i) {
      ASSERT_TRUE((*t)
                      ->Insert({Value(int64_t(i)), Value(int64_t(i % 10)),
                                Value("cat" + std::to_string(i % 4)),
                                i % 5 == 0 ? Value() : Value(int64_t(i))})
                      .ok());
    }
  }

  Catalog catalog_;
};

TEST_F(StatsTest, BasicCounters) {
  const ColumnStats stats = ColumnStats::Build(*catalog_.GetTable("t"), 0);
  EXPECT_EQ(stats.num_rows(), 10000u);
  EXPECT_EQ(stats.num_nulls(), 0u);
  EXPECT_EQ(stats.num_distinct(), 10000u);
  EXPECT_EQ(stats.min().AsInt(), 0);
  EXPECT_EQ(stats.max().AsInt(), 9999);
}

TEST_F(StatsTest, NullTracking) {
  const ColumnStats stats = ColumnStats::Build(*catalog_.GetTable("t"), 3);
  EXPECT_EQ(stats.num_nulls(), 2000u);
}

TEST_F(StatsTest, EqualitySelectivity) {
  const ColumnStats mod10 = ColumnStats::Build(*catalog_.GetTable("t"), 1);
  EXPECT_EQ(mod10.num_distinct(), 10u);
  EXPECT_NEAR(mod10.Selectivity(CompareOp::kEq, Value(int64_t(3))), 0.1,
              0.02);
  // Out-of-range equality has zero selectivity.
  EXPECT_DOUBLE_EQ(mod10.Selectivity(CompareOp::kEq, Value(int64_t(99))),
                   0.0);
}

TEST_F(StatsTest, RangeSelectivityViaHistogram) {
  const ColumnStats u = ColumnStats::Build(*catalog_.GetTable("t"), 0);
  EXPECT_NEAR(u.Selectivity(CompareOp::kLt, Value(int64_t(5000))), 0.5,
              0.06);
  EXPECT_NEAR(u.Selectivity(CompareOp::kGt, Value(int64_t(9000))), 0.1,
              0.05);
  EXPECT_NEAR(u.RangeSelectivity(Value(int64_t(1000)), Value(int64_t(2000))),
              0.1, 0.05);
  EXPECT_DOUBLE_EQ(u.RangeSelectivity(Value(int64_t(5)), Value(int64_t(1))),
                   0.0);
}

TEST_F(StatsTest, BoundaryBehaviour) {
  const ColumnStats u = ColumnStats::Build(*catalog_.GetTable("t"), 0);
  EXPECT_NEAR(u.Selectivity(CompareOp::kLt, Value(int64_t(0))), 0.0, 1e-9);
  EXPECT_NEAR(u.Selectivity(CompareOp::kGe, Value(int64_t(0))), 1.0, 1e-9);
  EXPECT_NEAR(u.Selectivity(CompareOp::kGt, Value(int64_t(9999))), 0.0,
              0.01);
}

// Provably-out-of-range literals resolve exactly from min/max instead of
// leaking EqSelectivity / histogram fractions. The mod10 column holds
// 0..9 with no nulls, so each predicate below has a known exact answer.
TEST_F(StatsTest, OutOfRangeLiteralsResolveExactly) {
  const ColumnStats mod10 = ColumnStats::Build(*catalog_.GetTable("t"), 1);
  // Equality against values outside [0, 9] matches nothing.
  EXPECT_DOUBLE_EQ(mod10.Selectivity(CompareOp::kEq, Value(int64_t(-1))),
                   0.0);
  EXPECT_DOUBLE_EQ(mod10.Selectivity(CompareOp::kEq, Value(int64_t(10))),
                   0.0);
  // ... and their negation matches every non-null row.
  EXPECT_DOUBLE_EQ(mod10.Selectivity(CompareOp::kNe, Value(int64_t(-1))),
                   1.0);
  EXPECT_DOUBLE_EQ(mod10.Selectivity(CompareOp::kNe, Value(int64_t(99))),
                   1.0);
  // col <= v for v below min matches nothing; at/above max, everything.
  EXPECT_DOUBLE_EQ(mod10.Selectivity(CompareOp::kLe, Value(int64_t(-1))),
                   0.0);
  EXPECT_DOUBLE_EQ(mod10.Selectivity(CompareOp::kLe, Value(int64_t(9))),
                   1.0);
  EXPECT_DOUBLE_EQ(mod10.Selectivity(CompareOp::kLe, Value(int64_t(50))),
                   1.0);
  // col > v at/above max matches nothing; below min, everything.
  EXPECT_DOUBLE_EQ(mod10.Selectivity(CompareOp::kGt, Value(int64_t(9))),
                   0.0);
  EXPECT_DOUBLE_EQ(mod10.Selectivity(CompareOp::kGt, Value(int64_t(-5))),
                   1.0);
  // col < v above max matches everything; col >= v below min likewise.
  EXPECT_DOUBLE_EQ(mod10.Selectivity(CompareOp::kLt, Value(int64_t(42))),
                   1.0);
  EXPECT_DOUBLE_EQ(mod10.Selectivity(CompareOp::kGe, Value(int64_t(-3))),
                   1.0);
}

TEST_F(StatsTest, OutOfRangeScalesByNullFraction) {
  // Column n is null for every 5th row: out-of-range kNe/kLt answers must
  // exclude the null fifth, not report 1.0.
  const ColumnStats n = ColumnStats::Build(*catalog_.GetTable("t"), 3);
  EXPECT_NEAR(n.Selectivity(CompareOp::kNe, Value(int64_t(-1))), 0.8, 1e-9);
  EXPECT_NEAR(n.Selectivity(CompareOp::kLt, Value(int64_t(999999))), 0.8,
              1e-9);
}

TEST_F(StatsTest, NullLiteralNeverMatches) {
  // `col <op> NULL` is UNKNOWN for every row under three-valued logic.
  const ColumnStats mod10 = ColumnStats::Build(*catalog_.GetTable("t"), 1);
  EXPECT_DOUBLE_EQ(mod10.Selectivity(CompareOp::kEq, Value()), 0.0);
  EXPECT_DOUBLE_EQ(mod10.Selectivity(CompareOp::kNe, Value()), 0.0);
  EXPECT_DOUBLE_EQ(mod10.Selectivity(CompareOp::kGe, Value()), 0.0);
  EXPECT_DOUBLE_EQ(mod10.RangeSelectivity(Value(), Value(int64_t(5))), 0.0);
}

TEST_F(StatsTest, DisjointRangeSelectivityIsZero) {
  const ColumnStats mod10 = ColumnStats::Build(*catalog_.GetTable("t"), 1);
  // Entirely above max / below min: no overlap with [0, 9].
  EXPECT_DOUBLE_EQ(
      mod10.RangeSelectivity(Value(int64_t(20)), Value(int64_t(30))), 0.0);
  EXPECT_DOUBLE_EQ(
      mod10.RangeSelectivity(Value(int64_t(-30)), Value(int64_t(-20))), 0.0);
  // Sanity: an overlapping range still estimates > 0.
  EXPECT_GT(mod10.RangeSelectivity(Value(int64_t(2)), Value(int64_t(4))),
            0.0);
}

TEST_F(StatsTest, InListSelectivityAdds) {
  const ColumnStats mod10 = ColumnStats::Build(*catalog_.GetTable("t"), 1);
  const double sel = mod10.InListSelectivity(
      {Value(int64_t(1)), Value(int64_t(2)), Value(int64_t(3))});
  EXPECT_NEAR(sel, 0.3, 0.05);
}

TEST_F(StatsTest, StringColumnStats) {
  const ColumnStats s = ColumnStats::Build(*catalog_.GetTable("t"), 2);
  EXPECT_EQ(s.num_distinct(), 4u);
  EXPECT_NEAR(s.Selectivity(CompareOp::kEq, Value("cat2")), 0.25, 0.01);
}

TEST_F(StatsTest, ManagerCachesAndInvalidates) {
  StatsManager mgr(&catalog_);
  const std::shared_ptr<const ColumnStats> first =
      mgr.GetColumnStats("t", "u");
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(mgr.GetColumnStats("t", "u"), first);  // cached snapshot
  mgr.Invalidate("t");
  const std::shared_ptr<const ColumnStats> second =
      mgr.GetColumnStats("t", "u");
  ASSERT_NE(second, nullptr);
  // A pre-invalidation snapshot stays readable (immutable shared_ptr).
  EXPECT_EQ(first->num_rows(), second->num_rows());
  EXPECT_EQ(mgr.GetColumnStats("t", "nope"), nullptr);
  EXPECT_EQ(mgr.GetColumnStats("missing", "u"), nullptr);
}

ExprPtr WhereOf(const std::string& cond) {
  auto stmt = ParseSql("SELECT u FROM t WHERE " + cond);
  EXPECT_TRUE(stmt.ok()) << cond;
  return std::move(stmt->select->where);
}

TEST_F(StatsTest, ExpressionSelectivityComposition) {
  StatsManager mgr(&catalog_);
  // AND multiplies.
  EXPECT_NEAR(mgr.EstimateSelectivity(*WhereOf("mod10 = 3 AND s = 'cat1'"),
                                      "t"),
              0.1 * 0.25, 0.02);
  // OR uses inclusion-exclusion.
  EXPECT_NEAR(mgr.EstimateSelectivity(*WhereOf("mod10 = 3 OR mod10 = 4"),
                                      "t"),
              0.1 + 0.1 - 0.01, 0.03);
  // NOT complements.
  EXPECT_NEAR(mgr.EstimateSelectivity(*WhereOf("NOT (mod10 = 3)"), "t"), 0.9,
              0.03);
}

TEST_F(StatsTest, JoinPredicateIsNeutral) {
  StatsManager mgr(&catalog_);
  EXPECT_DOUBLE_EQ(
      mgr.EstimateSelectivity(*WhereOf("t.u = other.x"), "t"), 1.0);
}

TEST_F(StatsTest, SwappedLiteralComparison) {
  StatsManager mgr(&catalog_);
  // "5000 > u" == "u < 5000".
  EXPECT_NEAR(mgr.EstimateSelectivity(*WhereOf("5000 > u"), "t"), 0.5, 0.06);
}

TEST_F(StatsTest, IsNullSelectivity) {
  StatsManager mgr(&catalog_);
  EXPECT_NEAR(mgr.EstimateSelectivity(*WhereOf("n IS NULL"), "t"), 0.2,
              0.02);
  EXPECT_NEAR(mgr.EstimateSelectivity(*WhereOf("n IS NOT NULL"), "t"), 0.8,
              0.02);
}

TEST(StatsEdge, EmptyTable) {
  Catalog catalog;
  auto t = catalog.CreateTable("e", Schema({{"a", ValueType::kInt}}));
  ASSERT_TRUE(t.ok());
  const ColumnStats stats = ColumnStats::Build(**t, 0);
  EXPECT_EQ(stats.num_rows(), 0u);
  EXPECT_DOUBLE_EQ(stats.Selectivity(CompareOp::kEq, Value(int64_t(1))), 0.0);
  EXPECT_DOUBLE_EQ(stats.EqSelectivity(), 0.0);
}

TEST(StatsEdge, AllNullColumn) {
  Catalog catalog;
  auto t = catalog.CreateTable("e", Schema({{"a", ValueType::kInt}}));
  ASSERT_TRUE(t.ok());
  for (int i = 0; i < 10; ++i) ASSERT_TRUE((*t)->Insert({Value()}).ok());
  const ColumnStats stats = ColumnStats::Build(**t, 0);
  EXPECT_EQ(stats.num_nulls(), 10u);
  EXPECT_DOUBLE_EQ(stats.Selectivity(CompareOp::kEq, Value(int64_t(1))), 0.0);
}

TEST(StatsEdge, SingleValueColumn) {
  Catalog catalog;
  auto t = catalog.CreateTable("e", Schema({{"a", ValueType::kInt}}));
  ASSERT_TRUE(t.ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE((*t)->Insert({Value(int64_t(7))}).ok());
  }
  const ColumnStats stats = ColumnStats::Build(**t, 0);
  EXPECT_EQ(stats.num_distinct(), 1u);
  EXPECT_NEAR(stats.Selectivity(CompareOp::kEq, Value(int64_t(7))), 1.0,
              1e-9);
  EXPECT_DOUBLE_EQ(stats.Selectivity(CompareOp::kEq, Value(int64_t(8))), 0.0);
}

}  // namespace
}  // namespace autoindex

namespace autoindex {
namespace {

TEST(Correlation, SequentialColumnFullyCorrelated) {
  Catalog catalog;
  auto t = catalog.CreateTable("c", Schema({{"a", ValueType::kInt}}));
  ASSERT_TRUE(t.ok());
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE((*t)->Insert({Value(int64_t(i))}).ok());
  }
  const ColumnStats stats = ColumnStats::Build(**t, 0);
  EXPECT_GT(stats.correlation(), 0.99);
}

TEST(Correlation, ReversedColumnNegativelyCorrelated) {
  Catalog catalog;
  auto t = catalog.CreateTable("c", Schema({{"a", ValueType::kInt}}));
  ASSERT_TRUE(t.ok());
  for (int i = 5000; i > 0; --i) {
    ASSERT_TRUE((*t)->Insert({Value(int64_t(i))}).ok());
  }
  const ColumnStats stats = ColumnStats::Build(**t, 0);
  EXPECT_LT(stats.correlation(), -0.99);
}

TEST(Correlation, ShuffledColumnUncorrelated) {
  Catalog catalog;
  auto t = catalog.CreateTable("c", Schema({{"a", ValueType::kInt}}));
  ASSERT_TRUE(t.ok());
  Random rng(77);
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE((*t)->Insert({Value(rng.UniformInt(0, 100000))}).ok());
  }
  const ColumnStats stats = ColumnStats::Build(**t, 0);
  EXPECT_LT(std::abs(stats.correlation()), 0.1);
}

TEST(Correlation, StringColumnReportsZero) {
  Catalog catalog;
  auto t = catalog.CreateTable("c", Schema({{"s", ValueType::kString}}));
  ASSERT_TRUE(t.ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE((*t)->Insert({Value("v" + std::to_string(i))}).ok());
  }
  const ColumnStats stats = ColumnStats::Build(**t, 0);
  EXPECT_DOUBLE_EQ(stats.correlation(), 0.0);
}

}  // namespace
}  // namespace autoindex
